//! Figure 5: single-parameter impacts on throughput and RTT.
//!
//! Sweeps each of the paper's four representative parameters —
//! `hai_rate`, `rate_reduce_monitor_period`, `rpg_time_reset`, `K_max` —
//! one at a time (all others at NVIDIA defaults) under a sustained
//! alltoall, and reports steady-state mean throughput and RTT. The
//! paper's observation to reproduce: each parameter has a
//! *throughput-friendly* and a *delay-friendly* direction.
//!
//! Run: `cargo run --release -p paraleon-bench --bin exp_fig5 [--paper]`

use paraleon::prelude::*;
use paraleon_bench::{gbps_of, print_table, sweep, tail_goodput, tail_rtt_us, write_json, Scale};
use paraleon_dcqcn::ParamId;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    param: String,
    value: f64,
    goodput_gbps: f64,
    rtt_us: f64,
}

/// The sweep workload: long-running elephants that periodically get hit
/// by mice incast bursts at their destinations. Each burst collapses the
/// elephants' DCQCN rates; the recovery between bursts exercises the
/// rate-increase machinery (fast recovery → additive → hyper), and the
/// ECN thresholds shape the collapse depth — so every swept parameter
/// has an observable effect, as in the paper's Figure 5.
fn measure(scale: Scale, params: DcqcnParams) -> (f64, f64) {
    let cfg = SimConfig {
        dcqcn: params,
        ..SimConfig::default()
    };
    let mut cl = ClosedLoop::builder(scale.clos())
        .scheme(SchemeKind::Static(params, "sweep"))
        .sim_config(cfg)
        .build();
    let hosts = scale.hosts();
    let pairs = hosts / 4;
    let window = match scale {
        Scale::Reduced => 24 * MILLI,
        Scale::Paper => 60 * MILLI,
    };
    // Elephants: disjoint cross-fabric pairs spread over all racks (so
    // no rack uplink is structurally saturated), sized to outlive the run.
    for i in 0..pairs {
        let src = i * (hosts / pairs);
        let dst = (src + hosts / 2 + 1) % hosts;
        cl.sim.add_flow(src, dst, 2 * 12_500 * window / 1_000, 0);
    }
    // Mice bursts: every 3 ms, an 8-to-1 incast of 64 KB mice onto each
    // elephant destination.
    let mut t = MILLI;
    while t < window {
        for i in 0..pairs {
            let dst = (i * (hosts / pairs) + hosts / 2 + 1) % hosts;
            for k in 0..8usize {
                let src = (dst + 1 + k * 3) % hosts;
                if src != dst {
                    cl.sim.add_flow(src, dst, 64 * 1024, t + k as u64 * 1000);
                }
            }
        }
        t += 3 * MILLI;
    }
    cl.run_until(window);
    let n = cl.cell.history.len();
    let tail = n.saturating_sub(1); // skip only the first interval
    (tail_goodput(&cl, tail), tail_rtt_us(&cl, tail))
}

fn main() {
    let scale = Scale::from_args();
    let sweeps: Vec<(ParamId, Vec<f64>)> = vec![
        (ParamId::HaiRate, vec![50.0, 150.0, 400.0, 800.0, 1600.0]),
        (
            ParamId::RateReduceMonitorPeriod,
            vec![4.0, 20.0, 80.0, 200.0, 400.0],
        ),
        (
            ParamId::RpgTimeReset,
            vec![20.0, 80.0, 300.0, 600.0, 1200.0],
        ),
        (ParamId::KMax, vec![100.0, 400.0, 1600.0, 6400.0, 12800.0]),
    ];
    println!("Figure 5 reproduction ({} scale)", scale.label());
    // Flatten the sweep grid into independent cells and fan them across
    // worker threads; results come back in cell order, so the tables and
    // the JSON are byte-identical to a `--serial` run.
    let cells: Vec<(ParamId, f64)> = sweeps
        .iter()
        .flat_map(|(param, values)| values.iter().map(|&v| (*param, v)))
        .collect();
    let jobs: Vec<_> = cells
        .iter()
        .map(|&(param, v)| {
            move || {
                let mut p = DcqcnParams::nvidia_default();
                p.set(param, v);
                if param == ParamId::KMax {
                    // Keep the thresholds consistent like operators do.
                    p.k_min = (v / 4.0).max(10.0);
                }
                measure(scale, p)
            }
        })
        .collect();
    let measured = sweep::run(sweep::threads_from_args(), jobs);
    let mut out = Vec::new();
    let mut it = cells.iter().zip(measured);
    for (param, values) in &sweeps {
        let mut rows = Vec::new();
        for _ in values {
            let (&(_, v), (tp, rtt)) = it.next().expect("one result per cell");
            rows.push(vec![
                format!("{v}"),
                format!("{:.1}", gbps_of(tp)),
                format!("{rtt:.1}"),
            ]);
            out.push(Point {
                param: param.name().to_string(),
                value: v,
                goodput_gbps: gbps_of(tp),
                rtt_us: rtt,
            });
        }
        print_table(
            &format!("Fig 5: sweep of {}", param.name()),
            &["value", "throughput (Gbps)", "RTT (us)"],
            &rows,
        );
    }
    write_json("fig5", &out);
}
