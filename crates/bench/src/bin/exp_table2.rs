//! Table II: NCCL-Tests-style alltoall algorithm bandwidth under the
//! NVIDIA default vs. the expert DCQCN setting, for growing message
//! sizes.
//!
//! The paper measures a 128×128 alltoall on 16 H100 nodes at 400 G and
//! sees the expert setting win by 3–6× with the gap growing with message
//! size. We reproduce the *shape* on the simulated 100 G fabric: a
//! synchronized alltoall per message size, algbw = per-rank payload /
//! round time (NCCL's definition).
//!
//! Run: `cargo run --release -p paraleon-bench --bin exp_table2 [--paper]`

use paraleon::prelude::*;
use paraleon_bench::{gbps_of, print_table, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheme: String,
    message_mb: f64,
    algbw_gbps: f64,
    round_ms: f64,
}

fn main() {
    let scale = Scale::from_args();
    let workers: Vec<usize> = match scale {
        Scale::Reduced => (0..16).map(|i| i * 2).collect(), // 16 ranks spread
        Scale::Paper => (0..32).map(|i| i * 4).collect(),
    };
    let messages: &[u64] = match scale {
        Scale::Reduced => &[128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20],
        Scale::Paper => &[1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20],
    };
    println!(
        "Table II reproduction ({} scale): {}x{} alltoall, default vs expert",
        scale.label(),
        workers.len(),
        workers.len()
    );

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for scheme in [SchemeKind::Default, SchemeKind::Expert] {
        for &msg in messages {
            let mut cl = ClosedLoop::builder(scale.clos())
                .scheme(scheme.clone())
                .build();
            let mut a2a = AllToAll::new(AllToAllConfig {
                workers: workers.clone(),
                message_bytes: msg,
                off_time: 0,
                rounds: Some(1),
            });
            drivers::run_alltoall(&mut cl, &mut a2a, 0, 20 * SEC);
            let algbw = a2a.algbw_bytes_per_sec(0).unwrap_or(0.0);
            let round_ms = a2a.round_durations.first().copied().unwrap_or(0) as f64 / 1e6;
            rows.push(vec![
                scheme.name().to_string(),
                format!("{:.2}", msg as f64 / (1 << 20) as f64),
                format!("{:.2}", gbps_of(algbw) / 8.0), // GB/s like the paper
                format!("{round_ms:.2}"),
            ]);
            out.push(Row {
                scheme: scheme.name().to_string(),
                message_mb: msg as f64 / (1 << 20) as f64,
                algbw_gbps: gbps_of(algbw),
                round_ms,
            });
        }
    }
    print_table(
        "Table II: alltoall out-of-place algbw (GB/s) vs per-pair message size (MB)",
        &["setting", "msg (MB)", "algbw (GB/s)", "round (ms)"],
        &rows,
    );
    // Headline check mirroring the paper's conclusion.
    let avg = |name: &str| {
        let v: Vec<f64> = out
            .iter()
            .filter(|r| r.scheme == name)
            .map(|r| r.algbw_gbps)
            .collect();
        paraleon::stats::mean(&v)
    };
    println!(
        "\nexpert/default mean algbw ratio: {:.2}x (paper: 2.0-5.7x)",
        avg("Expert") / avg("Default").max(1e-9)
    );
    write_json("table2", &out);
}
