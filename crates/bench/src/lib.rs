//! Shared harness utilities for the per-figure/per-table experiment
//! binaries (`src/bin/exp_*.rs`).
//!
//! Every binary regenerates one table or figure of the paper. Because
//! the substrate is a packet-level simulator on one machine (not the
//! authors' 128-server ns-3 runs or the 32×H100 testbed), each
//! experiment has two scales:
//!
//! * **reduced** (default) — smaller fabric / shorter windows, minutes of
//!   wall clock for the whole suite; preserves the qualitative shape.
//! * **paper** (`--paper`) — the paper's topology and durations.
//!
//! Results print as aligned text tables and are also dumped as JSON under
//! `results/` so EXPERIMENTS.md can reference machine-readable runs.

// The parallel sweep runner moved into `paraleon-hunt` (its search loop
// fans candidate evaluations through it); re-exported here so the
// experiment binaries keep their `paraleon_bench::sweep::` paths.
pub use paraleon_hunt::sweep;

use std::io::Write;
use std::path::PathBuf;

use paraleon::prelude::*;
use serde::Serialize;

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced fabric (default): 4 ToR × 8 hosts, 2 leaves.
    Reduced,
    /// The paper's NS3 fabric: 8 ToR × 16 hosts, 4 leaves.
    Paper,
}

impl Scale {
    /// Parse from process args: `--paper` selects paper scale.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Reduced
        }
    }

    /// The evaluation fabric at this scale (4:1 oversubscribed CLOS,
    /// 100 G links, 5 µs propagation — §IV-B).
    pub fn clos(self) -> Topology {
        match self {
            // 8 hosts/ToR vs 2 uplinks: 4:1 oversubscription.
            Scale::Reduced => Topology::two_tier_clos(4, 8, 2, 100.0, 100.0, 5_000),
            // 16 hosts/ToR vs 4 uplinks: 4:1, the paper's 128 servers.
            Scale::Paper => Topology::two_tier_clos(8, 16, 4, 100.0, 100.0, 5_000),
        }
    }

    /// Hosts in the fabric.
    pub fn hosts(self) -> usize {
        match self {
            Scale::Reduced => 32,
            Scale::Paper => 128,
        }
    }

    /// FB_Hadoop measurement window (long enough for a scaled SA episode
    /// to converge well before the end).
    pub fn fb_window(self) -> u64 {
        match self {
            Scale::Reduced => 150 * MILLI,
            Scale::Paper => 500 * MILLI,
        }
    }

    /// Shorter window for the monitoring-accuracy sweeps (accuracy
    /// stabilizes within a few tens of intervals).
    pub fn monitor_window(self) -> u64 {
        match self {
            Scale::Reduced => 60 * MILLI,
            Scale::Paper => 200 * MILLI,
        }
    }

    /// The SA schedule for this scale: the paper's Table III settings at
    /// paper scale; a proportionally shortened episode (same shape,
    /// fewer iterations per temperature level) at reduced scale, so the
    /// episode length stays well inside the reduced windows.
    pub fn sa_config(self) -> SaConfig {
        match self {
            Scale::Reduced => SaConfig {
                total_iter_num: 4,
                cooling_rate: 0.6,
                ..SaConfig::paper_default()
            },
            Scale::Paper => SaConfig::paper_default(),
        }
    }

    /// Monitor intervals each SA candidate is evaluated over: small
    /// fabrics have few flows per 1 ms interval, so single-interval
    /// utility is too noisy to rank candidates.
    pub fn sa_eval_intervals(self) -> u32 {
        match self {
            Scale::Reduced => 3,
            Scale::Paper => 1,
        }
    }

    /// The PARALEON scheme configured for this scale.
    pub fn paraleon(self) -> SchemeKind {
        SchemeKind::ParaleonSa(self.sa_config(), self.sa_eval_intervals())
    }

    /// LLM alltoall message size per worker pair.
    pub fn llm_message(self) -> u64 {
        match self {
            Scale::Reduced => 1 << 20, // 1 MB keeps rounds ~ms
            Scale::Paper => 12 << 20,  // the paper's 12 MB
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Reduced => "reduced",
            Scale::Paper => "paper",
        }
    }
}

/// Print an aligned text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for r in rows {
        println!("{}", fmt_row(r));
    }
}

/// Write a JSON result blob under `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(
            serde_json::to_string_pretty(value)
                .unwrap_or_default()
                .as_bytes(),
        );
        println!("[results -> {}]", path.display());
    }
}

fn results_dir() -> PathBuf {
    // Workspace root when run via cargo, else CWD.
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../../results"))
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Start a telemetry-instrumented experiment run: clears any previous
/// recording and turns the registry on.
pub fn telemetry_begin() {
    paraleon_telemetry::reset();
    paraleon_telemetry::set_enabled(true);
}

/// Finish a telemetry-instrumented run: export the registry to
/// `results/telemetry/<name>.jsonl`, clear it for the next run, and
/// return the dump read back from disk — the figure binaries build
/// their plot data from this, so the JSONL on disk is exactly what the
/// figures consumed.
pub fn telemetry_dump(name: &str) -> paraleon_telemetry::export::TelemetryDump {
    let path = results_dir()
        .join("telemetry")
        .join(format!("{}.jsonl", sanitize(name)));
    let dump = paraleon_telemetry::export::write_jsonl(&path)
        .and_then(paraleon_telemetry::export::read_jsonl)
        .unwrap_or_else(|e| {
            eprintln!("[telemetry export failed: {e}]");
            Default::default()
        });
    println!("[telemetry -> {}]", path.display());
    paraleon_telemetry::reset();
    dump
}

/// File-name-safe version of a scheme/run label.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Gbps pretty-print from bytes/sec.
pub fn gbps_of(bytes_per_sec: f64) -> f64 {
    bytes_per_sec * 8.0 / 1e9
}

/// Mean of the goodput (bytes/s) over the last `n` interval records.
pub fn tail_goodput(cl: &ClosedLoop, n: usize) -> f64 {
    let h = &cl.cell.history;
    if h.is_empty() {
        return 0.0;
    }
    let take = n.min(h.len());
    h[h.len() - take..].iter().map(|r| r.goodput).sum::<f64>() / take as f64
}

/// Mean of the RTT (µs) over the last `n` interval records with samples.
pub fn tail_rtt_us(cl: &ClosedLoop, n: usize) -> f64 {
    let h = &cl.cell.history;
    let take = n.min(h.len());
    let samples: Vec<f64> = h[h.len() - take..]
        .iter()
        .filter(|r| r.avg_rtt_ns > 0.0)
        .map(|r| r.avg_rtt_ns / 1_000.0)
        .collect();
    paraleon::stats::mean(&samples)
}

/// The five tuning schemes of §IV-B1, in display order, with PARALEON's
/// SA schedule matched to the scale.
pub fn all_schemes(scale: Scale) -> Vec<SchemeKind> {
    vec![
        SchemeKind::Default,
        SchemeKind::Expert,
        SchemeKind::DcqcnPlus,
        SchemeKind::Acc,
        scale.paraleon(),
    ]
}
