//! The network-wide utility function (Equation (1) of the paper):
//!
//! ```text
//! U = ω_TP · O_TP + ω_RTT · O_RTT + ω_PFC · O_PFC
//! ```
//!
//! * `O_TP`  — mean bandwidth utilization of active RNIC↔ToR uplinks;
//! * `O_RTT` — mean Swift-style normalized RTT, `base_path_delay / RTT`;
//! * `O_PFC` — `1 − λ̄_xoff / λ_MI`, the complement of the mean per-device
//!   PFC pause fraction. PFC gets its own term because RTT alone cannot
//!   distinguish "long but tolerable queues" from "upstream paused by an
//!   incast switch" (§III-C).
//!
//! All three terms lie in `[0, 1]`, so `U ∈ [0, 1]` for normalized
//! weights. Operators pick weights per scenario; the paper's NS3 default
//! is `(0.2, 0.5, 0.3)` and a throughput-sensitive (LLM) profile is
//! `(0.5, 0.2, 0.3)`.

use serde::{Deserialize, Serialize};

/// Performance weights `(ω_TP, ω_RTT, ω_PFC)`; must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityWeights {
    /// Throughput weight ω_TP.
    pub tp: f64,
    /// RTT weight ω_RTT.
    pub rtt: f64,
    /// PFC weight ω_PFC.
    pub pfc: f64,
}

impl UtilityWeights {
    /// Build weights; panics unless each is non-negative and they sum
    /// to 1 (±1e-6).
    pub fn new(tp: f64, rtt: f64, pfc: f64) -> Self {
        assert!(tp >= 0.0 && rtt >= 0.0 && pfc >= 0.0);
        assert!(
            ((tp + rtt + pfc) - 1.0).abs() < 1e-6,
            "weights must sum to 1, got {}",
            tp + rtt + pfc
        );
        Self { tp, rtt, pfc }
    }

    /// The paper's NS3 default: (0.2, 0.5, 0.3).
    pub fn paper_default() -> Self {
        Self::new(0.2, 0.5, 0.3)
    }

    /// Throughput-sensitive profile for LLM training: (0.5, 0.2, 0.3).
    pub fn throughput_sensitive() -> Self {
        Self::new(0.5, 0.2, 0.3)
    }

    /// Latency-sensitive profile for RPC-heavy clusters: (0.1, 0.6, 0.3).
    pub fn latency_sensitive() -> Self {
        Self::new(0.1, 0.6, 0.3)
    }
}

/// One interval's utility-function inputs, each already normalized to
/// `[0, 1]` by the metric collection layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// O_TP: mean active-uplink utilization.
    pub o_tp: f64,
    /// O_RTT: mean normalized RTT (base / runtime).
    pub o_rtt: f64,
    /// O_PFC: `1 − pause fraction`.
    pub o_pfc: f64,
}

impl MetricSample {
    /// Build a sample, clamping each term into `[0, 1]`. The clamp is a
    /// safety net, not a license: the collection layer is supposed to
    /// deliver in-range terms, so the audit feature flags any raw input
    /// the clamp would silently repair.
    pub fn new(o_tp: f64, o_rtt: f64, o_pfc: f64) -> Self {
        if paraleon_audit::enabled() {
            for (term, value) in [("O_TP", o_tp), ("O_RTT", o_rtt), ("O_PFC", o_pfc)] {
                paraleon_audit::check(value.is_finite() && (0.0..=1.0).contains(&value), || {
                    paraleon_audit::AuditViolation::UtilityTermBounds { term, value }
                });
            }
        }
        Self {
            o_tp: o_tp.clamp(0.0, 1.0),
            o_rtt: o_rtt.clamp(0.0, 1.0),
            o_pfc: o_pfc.clamp(0.0, 1.0),
        }
    }

    /// Evaluate Equation (1) under `w`.
    pub fn utility(&self, w: &UtilityWeights) -> f64 {
        w.tp * self.o_tp + w.rtt * self.o_rtt + w.pfc * self.o_pfc
    }

    /// Wire size of one device's metric upload (Table IV: three f32
    /// metrics per device).
    pub fn wire_size_bytes() -> usize {
        3 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_weights_sum_to_one() {
        let w = UtilityWeights::paper_default();
        assert!((w.tp + w.rtt + w.pfc - 1.0).abs() < 1e-12);
        assert_eq!(w.rtt, 0.5);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_unnormalized_weights() {
        UtilityWeights::new(0.5, 0.5, 0.5);
    }

    #[test]
    fn utility_is_bounded() {
        let w = UtilityWeights::paper_default();
        assert_eq!(MetricSample::new(1.0, 1.0, 1.0).utility(&w), 1.0);
        assert_eq!(MetricSample::new(0.0, 0.0, 0.0).utility(&w), 0.0);
        let mid = MetricSample::new(0.5, 0.5, 0.5).utility(&w);
        assert!((mid - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weights_steer_preferences() {
        // A high-throughput / bad-RTT state scores better under the
        // throughput-sensitive profile than the latency-sensitive one.
        let s = MetricSample::new(0.95, 0.3, 0.9);
        let tp = s.utility(&UtilityWeights::throughput_sensitive());
        let lat = s.utility(&UtilityWeights::latency_sensitive());
        assert!(tp > lat);
    }

    #[test]
    fn inputs_are_clamped() {
        // Out-of-range inputs are exactly what the auditor flags; this
        // test exercises the clamp itself, so count instead of panicking.
        paraleon_audit::set_panic_on_violation(false);
        let audit_before = paraleon_audit::violation_count();
        let s = MetricSample::new(1.5, -0.2, 0.5);
        assert_eq!(s.o_tp, 1.0);
        assert_eq!(s.o_rtt, 0.0);
        if paraleon_audit::compiled_in() {
            assert_eq!(
                paraleon_audit::violation_count() - audit_before,
                2,
                "audit must flag both out-of-range terms"
            );
        }
    }

    #[test]
    fn pfc_term_distinguishes_pause_states() {
        // Same TP and RTT, different pause ratios: the PFC term must
        // separate them (the paper's motivation for a third term).
        let w = UtilityWeights::paper_default();
        let benign = MetricSample::new(0.8, 0.6, 1.0);
        let stormy = MetricSample::new(0.8, 0.6, 0.4);
        assert!(benign.utility(&w) > stormy.utility(&w));
    }
}
