//! PARALEON's Runtime Metric Monitor (paper §III-B), plus the monitoring
//! baselines it is evaluated against.
//!
//! The monitor has two halves:
//!
//! * **Flow size distribution measurement** (continuous, layered): every
//!   monitor interval λ_MI each ToR control plane drains its data-plane
//!   Elastic Sketch, updates ternary flow states through the sliding
//!   window, and uploads a local FSD; the centralized controller merges
//!   the local FSDs into the network-wide distribution
//!   ([`paraleon::ParaleonMonitor`], [`aggregate::NetworkAggregator`]).
//! * **Runtime metric collection** (event-driven): when tuning is active,
//!   devices upload throughput / RTT / PFC once per interval and the
//!   controller evaluates the utility function
//!   ([`utility::UtilityWeights`], Equation (1)).
//!
//! Tuning is *triggered* when the KL divergence between successive
//! network-wide FSDs exceeds θ ([`trigger::ChangeDetector`]).
//!
//! Baselines for Figures 10–11 live here too: [`netflow::NetFlowMonitor`]
//! (1:100 packet sampling, O(seconds) interval) and
//! [`naive::NaiveSketchMonitor`] (per-interval binary classification
//! without history). All monitors implement [`FsdMonitor`] so the
//! harness can swap them.

pub mod aggregate;
pub mod naive;
pub mod netflow;
pub mod overhead;
pub mod paraleon;
pub mod resilient;
pub mod trigger;
pub mod utility;

pub use aggregate::NetworkAggregator;
pub use naive::NaiveSketchMonitor;
pub use netflow::{NetFlowConfig, NetFlowMonitor};
pub use overhead::TransferLedger;
pub use paraleon::ParaleonMonitor;
pub use resilient::{FsdUpload, StalenessMerger, DEFAULT_STALE_AFTER_INTERVALS};
pub use trigger::ChangeDetector;
pub use utility::{MetricSample, UtilityWeights};

use paraleon_sketch::{FlowId, Fsd};

/// Nanoseconds (matches the simulator clock).
pub type Nanos = u64;

/// Identifier of a measurement point (a ToR switch).
pub type PointId = usize;

/// One monitor interval's sketch readings: per measurement point, the
/// drained `(flow, bytes)` entries.
pub type SketchReadings = [(PointId, Vec<(FlowId, u64)>)];

/// A pluggable network-wide FSD estimation scheme.
///
/// Called once per monitor interval with the drained per-switch sketch
/// readings; returns the current network-wide FSD estimate when the
/// scheme has one (NetFlow, with its O(seconds) export period, returns
/// its previous export until a new one is due).
pub trait FsdMonitor: Send {
    /// Ingest one interval ending at `now`; return the scheme's current
    /// network-wide FSD estimate, if any.
    fn on_interval(&mut self, readings: &SketchReadings, now: Nanos) -> Option<Fsd>;

    /// Fabric-side half of one interval under an explicit (impairable)
    /// control plane: ingest the readings and emit sequence-numbered,
    /// λ_MI-stamped per-point uploads for the controller-side
    /// [`StalenessMerger`] instead of merging centrally. `interval` is
    /// the closed loop's monitor-interval index (the upload timestamp).
    ///
    /// The default wraps [`FsdMonitor::on_interval`]'s central estimate
    /// in a single point-0 upload stamped `seq = interval` — correct for
    /// schemes without a layered fabric half; layered schemes override
    /// this to ship genuine per-point uploads.
    fn uploads(&mut self, readings: &SketchReadings, now: Nanos, interval: u64) -> Vec<FsdUpload> {
        match self.on_interval(readings, now) {
            Some(fsd) => vec![FsdUpload {
                point: 0,
                seq: interval,
                interval,
                fsd,
            }],
            None => Vec::new(),
        }
    }

    /// Total bytes this scheme has uploaded to the controller so far
    /// (Table IV data-transfer accounting).
    fn uploaded_bytes(&self) -> u64;

    /// Human-readable scheme name.
    fn name(&self) -> &'static str;
}
