//! Baseline: naive Elastic Sketch monitoring.
//!
//! Classifies each flow from a *single* monitor interval: elephant iff it
//! moved ≥ τ bytes within that interval, mice otherwise — no history, no
//! potential-elephant state. At millisecond intervals this misidentifies
//! congested or late-arriving elephants (the failure mode Figures 10–11
//! quantify).

use paraleon_sketch::{Fsd, FsdBuilder};

use crate::{FsdMonitor, Nanos, SketchReadings};

/// Per-interval binary elephant/mice classification.
#[derive(Debug)]
pub struct NaiveSketchMonitor {
    tau_bytes: u64,
    uploaded: u64,
}

impl NaiveSketchMonitor {
    /// Create with elephant threshold τ (bytes per interval).
    pub fn new(tau_bytes: u64) -> Self {
        Self {
            tau_bytes: tau_bytes.max(1),
            uploaded: 0,
        }
    }
}

impl FsdMonitor for NaiveSketchMonitor {
    fn on_interval(&mut self, readings: &SketchReadings, _now: Nanos) -> Option<Fsd> {
        let mut network = Fsd::empty();
        for (_, entries) in readings {
            let mut b = FsdBuilder::new();
            for &(_, bytes) in entries {
                let w = if bytes >= self.tau_bytes { 1.0 } else { 0.0 };
                b.add_flow(bytes, w);
            }
            let local = b.build();
            self.uploaded += local.wire_size_bytes() as u64;
            network.merge(&local);
        }
        Some(network)
    }

    fn uploaded_bytes(&self) -> u64 {
        self.uploaded
    }

    fn name(&self) -> &'static str {
        "ElasticSketch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn per_interval_threshold_only() {
        let mut m = NaiveSketchMonitor::new(MB);
        let fsd = m
            .on_interval(&[(0, vec![(1, 2 * MB), (2, 100_000)])], 0)
            .unwrap();
        // Flow 1 crosses τ this interval; flow 2 does not.
        assert!(fsd.elephant_share() > 0.9);
    }

    #[test]
    fn misidentifies_throttled_elephant() {
        // The exact failure the paper motivates: an elephant moving less
        // than τ per interval is classified as mice — every interval.
        let mut m = NaiveSketchMonitor::new(MB);
        for _ in 0..10 {
            let fsd = m.on_interval(&[(0, vec![(9, 300_000)])], 0).unwrap();
            assert_eq!(
                fsd.elephant_share(),
                0.0,
                "naive scheme must misclassify (that's its documented flaw)"
            );
        }
    }

    #[test]
    fn no_state_across_intervals() {
        let mut m = NaiveSketchMonitor::new(MB);
        m.on_interval(&[(0, vec![(9, 2 * MB)])], 0);
        // Next interval the same flow trickles: immediately mice again.
        let fsd = m.on_interval(&[(0, vec![(9, 1_000)])], 1).unwrap();
        assert_eq!(fsd.elephant_share(), 0.0);
    }
}
