//! The tuning trigger: KL divergence between successive network-wide
//! flow size distributions.
//!
//! PARALEON computes `KL(R_t ‖ R_{t−1})` at sub-second cadence; when it
//! exceeds the operator threshold θ (paper default 0.01), the network-
//! wide traffic pattern has changed significantly and a tuning episode
//! starts (§III-A).

use paraleon_sketch::Fsd;

/// Detects significant traffic-pattern change.
///
/// `Clone` so a controller can checkpoint the detector alongside the
/// rest of its state and restore it after a crash.
#[derive(Debug, Clone)]
pub struct ChangeDetector {
    theta: f64,
    prev: Option<Fsd>,
    /// Number of observations so far.
    pub observations: u64,
    /// Number of triggers fired.
    pub triggers: u64,
}

impl ChangeDetector {
    /// Create with threshold θ.
    pub fn new(theta: f64) -> Self {
        assert!(theta >= 0.0);
        Self {
            theta,
            prev: None,
            observations: 0,
            triggers: 0,
        }
    }

    /// The paper's default θ = 0.01.
    pub fn paper_default() -> Self {
        Self::new(0.01)
    }

    /// Observe the latest network-wide FSD; returns `true` when tuning
    /// should be (re)triggered. The first observation never triggers
    /// (there is no previous distribution to compare against).
    ///
    /// The divergence is computed over the elephant/mice byte-share
    /// distribution (`Fsd::kl_shares`): that is the tuner's decision
    /// variable, and unlike the raw size histogram it is stationary for a
    /// stable workload (long-lived flows crossing log-size bins would
    /// otherwise read as spurious change).
    pub fn observe(&mut self, fsd: &Fsd) -> bool {
        self.observations += 1;
        let fired = match &self.prev {
            None => false,
            Some(prev) => {
                let kl = fsd.kl_shares(prev);
                let fired = kl > self.theta;
                if fired {
                    paraleon_telemetry::event(paraleon_telemetry::Event::KlTrigger {
                        kl,
                        theta: self.theta,
                    });
                }
                fired
            }
        };
        self.prev = Some(fsd.clone());
        if fired {
            self.triggers += 1;
        }
        fired
    }

    /// Most recent KL divergence against the stored distribution without
    /// updating state (diagnostics).
    pub fn peek_kl(&self, fsd: &Fsd) -> Option<f64> {
        self.prev.as_ref().map(|p| fsd.kl_shares(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraleon_sketch::FsdBuilder;

    const MB: u64 = 1 << 20;

    fn elephants() -> Fsd {
        let mut b = FsdBuilder::new();
        for _ in 0..10 {
            b.add_flow(20 * MB, 1.0);
        }
        b.build()
    }

    fn mice() -> Fsd {
        let mut b = FsdBuilder::new();
        for _ in 0..100 {
            b.add_flow(4_000, 0.0);
        }
        b.build()
    }

    #[test]
    fn first_observation_never_triggers() {
        let mut d = ChangeDetector::paper_default();
        assert!(!d.observe(&elephants()));
        assert_eq!(d.triggers, 0);
    }

    #[test]
    fn stable_traffic_does_not_trigger() {
        let mut d = ChangeDetector::paper_default();
        d.observe(&elephants());
        for _ in 0..10 {
            assert!(!d.observe(&elephants()));
        }
    }

    #[test]
    fn workload_shift_triggers() {
        let mut d = ChangeDetector::paper_default();
        d.observe(&elephants());
        assert!(d.observe(&mice()), "elephant→mice shift must trigger");
        assert_eq!(d.triggers, 1);
        // And shifting back triggers again.
        assert!(d.observe(&elephants()));
    }

    #[test]
    fn threshold_gates_sensitivity() {
        // A slightly perturbed distribution (one extra mouse among 500
        // elephants): below a loose θ, above a strict θ = 0.
        let mut base = FsdBuilder::new();
        for _ in 0..500 {
            base.add_flow(20 << 20, 1.0);
        }
        let base = base.build();
        let mut slightly_different = base.clone();
        let mut b = FsdBuilder::new();
        b.add_flow(4_000, 0.0);
        slightly_different.merge(&b.build());

        let mut loose = ChangeDetector::new(0.5);
        loose.observe(&base);
        assert!(!loose.observe(&slightly_different));

        let mut strict = ChangeDetector::new(0.0);
        strict.observe(&base);
        assert!(strict.observe(&slightly_different));
    }

    #[test]
    fn peek_does_not_mutate() {
        let mut d = ChangeDetector::paper_default();
        d.observe(&elephants());
        let k1 = d.peek_kl(&mice()).unwrap();
        let k2 = d.peek_kl(&mice()).unwrap();
        assert_eq!(k1, k2);
        assert!(k1 > 0.01);
        assert_eq!(d.observations, 1);
    }
}
