//! Controller-side resilience to a faulty upload channel.
//!
//! Under an explicit control plane (PR 7) the per-ToR local FSDs no
//! longer arrive as one synchronous batch: each measurement point ships
//! a sequence-numbered, λ_MI-stamped [`FsdUpload`], and the channel in
//! between may lose, delay, duplicate or reorder it. The
//! [`StalenessMerger`] is the aggregation half of the Runtime Metric
//! Monitor hardened against that: it keeps only the newest accepted
//! upload per point (sequence numbers make duplicates and stale
//! reorderings idempotent no-ops), and when asked for the network-wide
//! FSD it down-weights each point's contribution by how many intervals
//! old it is — a late switch degrades coverage smoothly instead of
//! poisoning the merge, and a switch silent past the staleness horizon
//! drops out entirely (mirroring `ParaleonMonitor`'s age-out of dead
//! points).
//!
//! Determinism: the merge iterates points in ascending [`PointId`]
//! order (a `BTreeMap`), and a fresh upload (age 0) contributes its FSD
//! bit-identically (`Fsd::scaled(1.0)` is a clone) — so over a clean
//! channel the merger reproduces `ParaleonMonitor::on_interval`'s
//! central merge exactly, byte for byte.

use std::collections::BTreeMap;

use paraleon_sketch::Fsd;
use serde::{Deserialize, Serialize};

use crate::PointId;

/// One measurement point's per-interval upload: its local FSD, stamped
/// with the λ_MI index it was measured in and a per-point sequence
/// number (monotone at the sender, so the receiver can discard
/// duplicates and stale reorderings).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsdUpload {
    /// The uploading measurement point (ToR switch).
    pub point: PointId,
    /// Per-point upload sequence number (monotone at the sender).
    pub seq: u64,
    /// Monitor-interval index the reading was measured in.
    pub interval: u64,
    /// The point's local FSD for that interval.
    pub fsd: Fsd,
}

/// Default staleness horizon, in monitor intervals: matches
/// [`crate::paraleon::DEFAULT_MAX_IDLE_INTERVALS`] so a point survives
/// channel impairment exactly as long as its fabric-side classifier
/// state does.
pub const DEFAULT_STALE_AFTER_INTERVALS: u64 = 32;

/// Staleness-weighted partial aggregator of per-point FSD uploads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StalenessMerger {
    stale_after: u64,
    /// Newest accepted upload per point, keyed for deterministic
    /// ascending-point merge order.
    latest: BTreeMap<PointId, FsdUpload>,
    /// Uploads accepted as the new latest for their point.
    pub accepted: u64,
    /// Uploads rejected as duplicates or stale reorderings (their
    /// sequence number did not advance the point's newest).
    pub rejected: u64,
    /// Points dropped from the merge after exceeding the staleness
    /// horizon.
    pub aged_out: u64,
    /// Accepted uploads whose sequence number regressed while their
    /// interval advanced — a sender restart (e.g. a cold-restored
    /// tenant re-numbering from 0).
    pub restarts: u64,
}

impl Default for StalenessMerger {
    fn default() -> Self {
        Self::new(DEFAULT_STALE_AFTER_INTERVALS)
    }
}

impl StalenessMerger {
    /// Merger dropping points whose newest upload is `stale_after` or
    /// more intervals old.
    pub fn new(stale_after: u64) -> Self {
        Self {
            stale_after: stale_after.max(1),
            latest: BTreeMap::new(),
            accepted: 0,
            rejected: 0,
            aged_out: 0,
            restarts: 0,
        }
    }

    /// The staleness horizon, in intervals.
    pub fn stale_after(&self) -> u64 {
        self.stale_after
    }

    /// Points currently contributing to the merge.
    pub fn n_points(&self) -> usize {
        self.latest.len()
    }

    /// Ingest one delivered upload. Returns `true` if it became the
    /// point's newest. Admission is interval-first: an upload measured
    /// in an older interval than the point's newest is a stale reorder,
    /// and within the same interval a non-advancing sequence number is a
    /// duplicate — both rejected, which is what makes delivery
    /// idempotent under channel duplication and reordering. An upload
    /// from a strictly newer interval whose sequence number *regressed*
    /// is a sender restart (the sender renumbers from 0 after a cold
    /// restore): it is accepted and counted, so a restarted point is
    /// never permanently rejected by its pre-crash watermark. Within one
    /// sender generation seq and interval are monotone together — the
    /// interval is stamped by the measuring loop, not by sender state —
    /// so the two orderings can only disagree across a restart.
    pub fn ingest(&mut self, up: FsdUpload) -> bool {
        match self.latest.get(&up.point) {
            Some(have) if up.interval < have.interval => {
                self.rejected += 1;
                false
            }
            Some(have) if up.interval == have.interval && up.seq <= have.seq => {
                self.rejected += 1;
                false
            }
            Some(have) if up.seq <= have.seq => {
                self.restarts += 1;
                self.accepted += 1;
                self.latest.insert(up.point, up);
                true
            }
            _ => {
                self.accepted += 1;
                self.latest.insert(up.point, up);
                true
            }
        }
    }

    /// Staleness weight for a reading `age` intervals old: 1 when
    /// fresh, linearly decaying to 0 at the horizon.
    fn weight(&self, age: u64) -> f64 {
        if age >= self.stale_after {
            return 0.0;
        }
        (self.stale_after - age) as f64 / self.stale_after as f64
    }

    /// The network-wide FSD as of interval `now`: prune points past the
    /// staleness horizon, then merge the survivors in ascending point
    /// order, each scaled by its staleness weight. Fresh uploads (age 0)
    /// contribute bit-identically to an unweighted merge.
    pub fn network_fsd(&mut self, now: u64) -> Fsd {
        let horizon = self.stale_after;
        let before = self.latest.len();
        self.latest
            .retain(|_, up| now.saturating_sub(up.interval) < horizon);
        self.aged_out += (before - self.latest.len()) as u64;
        let mut network = Fsd::empty();
        for up in self.latest.values() {
            let age = now.saturating_sub(up.interval);
            let w = self.weight(age);
            if age == 0 {
                // `scaled(1.0)` clones, but merging the original keeps
                // the clean-channel fast path allocation-free.
                network.merge(&up.fsd);
            } else {
                network.merge(&up.fsd.scaled(w));
            }
        }
        network
    }

    /// How many contributing points are fresh (age 0) at interval `now`
    /// versus total — a coverage signal for telemetry.
    pub fn coverage(&self, now: u64) -> (usize, usize) {
        let fresh = self.latest.values().filter(|up| up.interval == now).count();
        (fresh, self.latest.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use paraleon_sketch::FsdBuilder;

    fn one_flow(bytes: u64) -> Fsd {
        let mut b = FsdBuilder::new();
        b.add_flow(bytes, 1.0);
        b.build()
    }

    fn upload(point: PointId, seq: u64, interval: u64, bytes: u64) -> FsdUpload {
        FsdUpload {
            point,
            seq,
            interval,
            fsd: one_flow(bytes),
        }
    }

    #[test]
    fn fresh_merge_matches_unweighted_merge() {
        let mut m = StalenessMerger::new(8);
        m.ingest(upload(0, 0, 5, 10_000));
        m.ingest(upload(1, 0, 5, 5_000_000));
        let got = m.network_fsd(5);
        let mut want = Fsd::empty();
        want.merge(&one_flow(10_000));
        want.merge(&one_flow(5_000_000));
        assert_eq!(got, want, "age-0 merge must be bit-identical");
    }

    #[test]
    fn duplicates_and_reorders_are_idempotent() {
        let mut m = StalenessMerger::new(8);
        assert!(m.ingest(upload(0, 3, 3, 1_000)));
        assert!(!m.ingest(upload(0, 3, 3, 1_000)), "duplicate rejected");
        assert!(!m.ingest(upload(0, 1, 1, 9_999)), "stale reorder rejected");
        assert!(m.ingest(upload(0, 4, 4, 2_000)), "newer accepted");
        assert_eq!(m.accepted, 2);
        assert_eq!(m.rejected, 2);
        let fsd = m.network_fsd(4);
        let mut want = Fsd::empty();
        want.merge(&one_flow(2_000));
        assert_eq!(fsd, want, "only the newest upload contributes");
    }

    #[test]
    fn stale_points_decay_then_age_out() {
        let mut m = StalenessMerger::new(4);
        m.ingest(upload(0, 0, 0, 1_000));
        let fresh_mass = m.network_fsd(0).flow_mass();
        assert!((fresh_mass - 1.0).abs() < 1e-12);
        let aged_mass = m.network_fsd(2).flow_mass();
        assert!(
            (aged_mass - 0.5).abs() < 1e-12,
            "age 2 of 4 → weight 0.5, got {aged_mass}"
        );
        assert_eq!(m.n_points(), 1);
        let gone = m.network_fsd(4);
        assert_eq!(gone.flow_mass(), 0.0);
        assert_eq!(m.n_points(), 0, "past horizon: point dropped");
        assert_eq!(m.aged_out, 1);
    }

    #[test]
    fn sender_restart_is_not_permanently_rejected() {
        // Regression: a tenant crash + cold restore renumbers the
        // sender's upload seq from 0. The pre-crash monotone watermark
        // (seq 100) must not permanently reject the fresh stream.
        let mut m = StalenessMerger::new(8);
        assert!(m.ingest(upload(0, 100, 40, 1_000)));
        // Crash at interval 40; the restored sender resumes at interval
        // 41 with seq 0, 1, 2, ...
        assert!(
            m.ingest(upload(0, 0, 41, 2_000)),
            "restarted stream's first upload must be accepted"
        );
        assert!(m.ingest(upload(0, 1, 42, 3_000)));
        assert_eq!(m.restarts, 1, "only the seq regression counts as restart");
        assert_eq!(m.rejected, 0);
        // The merge reflects the newest post-restart reading.
        let fsd = m.network_fsd(42);
        let mut want = Fsd::empty();
        want.merge(&one_flow(3_000));
        assert_eq!(fsd, want);
        // An old-generation straggler (high seq, old interval) delivered
        // late must not overwrite the fresh stream.
        assert!(
            !m.ingest(upload(0, 99, 39, 9_999)),
            "old-generation straggler rejected by interval"
        );
        assert_eq!(m.rejected, 1);
    }

    #[test]
    fn same_interval_duplicates_still_rejected_across_restart() {
        let mut m = StalenessMerger::new(8);
        assert!(m.ingest(upload(0, 0, 10, 1_000)));
        assert!(
            !m.ingest(upload(0, 0, 10, 1_000)),
            "same interval + same seq is a duplicate, not a restart"
        );
        assert_eq!(m.restarts, 0);
        assert_eq!(m.rejected, 1);
    }

    #[test]
    fn coverage_distinguishes_fresh_from_lagging() {
        let mut m = StalenessMerger::new(8);
        m.ingest(upload(0, 5, 5, 1_000));
        m.ingest(upload(1, 3, 3, 1_000));
        assert_eq!(m.coverage(5), (1, 2));
    }
}
