//! The centralized controller's monitoring front end: pluggable FSD
//! scheme + change detector + dominant-flow-type extraction.
//!
//! This is the piece of Figure 2 that runs on the controller: it receives
//! per-switch sketch readings each monitor interval, obtains the
//! network-wide FSD from the configured scheme, checks the KL trigger and
//! reports the dominant flow type / proportion µ that steers guided SA.

use paraleon_sketch::{FlowType, Fsd};

use crate::trigger::ChangeDetector;
use crate::{FsdMonitor, Nanos, SketchReadings};

/// What the monitoring front end tells the tuning loop each interval.
#[derive(Debug, Clone)]
pub struct MonitorVerdict {
    /// The network-wide FSD estimate (empty if the scheme has none yet).
    pub fsd: Fsd,
    /// Whether the KL trigger fired this interval.
    pub tuning_triggered: bool,
    /// Dominant flow type.
    pub dominant: FlowType,
    /// Its proportion µ.
    pub mu: f64,
}

/// Controller-side aggregation over any [`FsdMonitor`] scheme.
pub struct NetworkAggregator<M: FsdMonitor> {
    scheme: M,
    detector: ChangeDetector,
}

impl<M: FsdMonitor> NetworkAggregator<M> {
    /// Wrap `scheme` with a KL change detector of threshold θ.
    pub fn new(scheme: M, theta: f64) -> Self {
        Self {
            scheme,
            detector: ChangeDetector::new(theta),
        }
    }

    /// Ingest one interval's readings.
    pub fn ingest(&mut self, readings: &SketchReadings, now: Nanos) -> MonitorVerdict {
        let fsd = self
            .scheme
            .on_interval(readings, now)
            .unwrap_or_else(Fsd::empty);
        let tuning_triggered = if fsd.is_empty() {
            false
        } else {
            self.detector.observe(&fsd)
        };
        let (dominant, mu) = fsd.dominant();
        MonitorVerdict {
            fsd,
            tuning_triggered,
            dominant,
            mu,
        }
    }

    /// The wrapped scheme.
    pub fn scheme(&self) -> &M {
        &self.scheme
    }

    /// Trigger statistics.
    pub fn triggers(&self) -> u64 {
        self.detector.triggers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paraleon::ParaleonMonitor;
    use paraleon_sketch::WindowConfig;

    const MB: u64 = 1 << 20;

    #[test]
    fn detects_shift_through_full_stack() {
        let mut agg = NetworkAggregator::new(ParaleonMonitor::new(WindowConfig::default()), 0.01);
        // Stable elephant phase.
        for i in 0..5u64 {
            let v = agg.ingest(&[(0, vec![(1, 5 * MB), (2, 5 * MB)])], i);
            assert_eq!(v.dominant, FlowType::Elephant);
            if i > 1 {
                assert!(!v.tuning_triggered, "stable phase at i={i}");
            }
        }
        // Mice influx: hundreds of small flows, elephants still present.
        let mice: Vec<(u64, u64)> = (100..400u64).map(|f| (f, 8_000)).collect();
        let mut readings = vec![(1, 5 * MB), (2, 5 * MB)];
        readings.extend(&mice);
        let v = agg.ingest(&[(0, readings)], 5);
        assert!(v.tuning_triggered, "influx must trigger tuning");
        assert!(agg.triggers() >= 1);
    }

    #[test]
    fn empty_readings_never_trigger() {
        let mut agg = NetworkAggregator::new(ParaleonMonitor::new(WindowConfig::default()), 0.0);
        for i in 0..3u64 {
            let v = agg.ingest(&[], i);
            assert!(!v.tuning_triggered);
            assert_eq!(v.mu, 0.5);
        }
    }
}
