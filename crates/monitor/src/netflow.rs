//! Baseline: NetFlow-style monitoring — packet sampling at a coarse
//! export period.
//!
//! Commodity (non-programmable) switches offer NetFlow/sFlow: each packet
//! is sampled with probability `1/sampling_rate`, per-flow byte counts
//! are scaled back up by the sampling rate, and records are exported only
//! every O(seconds). The paper configures 1:100 sampling with a 1 s
//! export period; both the sampling noise (mice are frequently missed
//! entirely) and the staleness (millisecond workload shifts are invisible
//! between exports) degrade the FSD this scheme feeds the tuner.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use paraleon_sketch::{FlowId, Fsd, FsdBuilder};

use crate::{FsdMonitor, Nanos, SketchReadings};

/// NetFlow configuration.
#[derive(Debug, Clone)]
pub struct NetFlowConfig {
    /// Sample one packet in `sampling_rate` (paper: 100).
    pub sampling_rate: u32,
    /// Export period in nanoseconds (paper: 1 s).
    pub export_period: Nanos,
    /// Assumed packet size for converting bytes to packets.
    pub pkt_bytes: u32,
    /// Elephant threshold τ applied to scaled per-export byte counts.
    pub tau_bytes: u64,
    /// Sampling RNG seed.
    pub seed: u64,
}

impl Default for NetFlowConfig {
    fn default() -> Self {
        Self {
            sampling_rate: 100,
            export_period: 1_000_000_000,
            pkt_bytes: 1000,
            tau_bytes: 1 << 20,
            seed: 77,
        }
    }
}

/// The NetFlow baseline monitor.
#[derive(Debug)]
pub struct NetFlowMonitor {
    cfg: NetFlowConfig,
    rng: StdRng,
    /// Sampled (already scaled-up) byte counts accumulating toward the
    /// next export.
    pending: HashMap<FlowId, u64>,
    window_start: Option<Nanos>,
    last_export: Option<Fsd>,
    uploaded: u64,
}

impl NetFlowMonitor {
    /// Create a monitor with the given configuration.
    pub fn new(cfg: NetFlowConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            rng,
            pending: HashMap::new(),
            window_start: None,
            last_export: None,
            uploaded: 0,
        }
    }

    /// Sample `n` Bernoulli(p) trials. Exact for small `n`, normal
    /// approximation for large `n` (keeps per-interval cost bounded).
    fn sample_binomial(rng: &mut StdRng, n: u64, p: f64) -> u64 {
        if n == 0 || p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        if n <= 512 {
            (0..n).filter(|_| rng.gen::<f64>() < p).count() as u64
        } else {
            let mean = n as f64 * p;
            let sd = (n as f64 * p * (1.0 - p)).sqrt();
            // Box–Muller.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (mean + sd * z).round().clamp(0.0, n as f64) as u64
        }
    }
}

impl FsdMonitor for NetFlowMonitor {
    fn on_interval(&mut self, readings: &SketchReadings, now: Nanos) -> Option<Fsd> {
        let start = *self.window_start.get_or_insert(now);
        let p = 1.0 / self.cfg.sampling_rate as f64;
        for (_, entries) in readings {
            for &(flow, bytes) in entries {
                let pkts = bytes.div_ceil(self.cfg.pkt_bytes as u64);
                let sampled = Self::sample_binomial(&mut self.rng, pkts, p);
                if sampled > 0 {
                    // Scale the sampled packets back up.
                    let est = sampled * self.cfg.sampling_rate as u64 * self.cfg.pkt_bytes as u64;
                    *self.pending.entry(flow).or_insert(0) += est;
                }
            }
        }
        if now.saturating_sub(start) >= self.cfg.export_period {
            let mut b = FsdBuilder::new();
            for (_, &bytes) in self.pending.iter() {
                let w = if bytes >= self.cfg.tau_bytes {
                    1.0
                } else {
                    0.0
                };
                b.add_flow(bytes, w);
            }
            let fsd = b.build();
            self.uploaded += fsd.wire_size_bytes() as u64 + self.pending.len() as u64 * 12;
            self.pending.clear();
            self.window_start = Some(now);
            self.last_export = Some(fsd);
        }
        self.last_export.clone()
    }

    fn uploaded_bytes(&self) -> u64 {
        self.uploaded
    }

    fn name(&self) -> &'static str {
        "NetFlow"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;
    const MS: Nanos = 1_000_000;

    fn monitor(period_ms: u64) -> NetFlowMonitor {
        NetFlowMonitor::new(NetFlowConfig {
            export_period: period_ms * MS,
            ..NetFlowConfig::default()
        })
    }

    #[test]
    fn nothing_exported_before_period_elapses() {
        let mut m = monitor(1000);
        for i in 0..100u64 {
            let out = m.on_interval(&[(0, vec![(1, 10 * MB)])], i * MS);
            assert!(out.is_none(), "no export before 1 s");
        }
    }

    #[test]
    fn exports_after_period_and_reuses_until_next() {
        let mut m = monitor(10);
        for i in 0..=10u64 {
            m.on_interval(&[(0, vec![(1, 10 * MB)])], i * MS);
        }
        let first = m.on_interval(&[(0, vec![(1, 10 * MB)])], 11 * MS);
        assert!(first.is_some() || m.last_export.is_some());
        // Subsequent intervals return the stale export (staleness is the
        // point of this baseline).
        let stale = m.on_interval(&[(0, vec![])], 12 * MS).unwrap();
        assert!(!stale.is_empty());
    }

    #[test]
    fn big_elephants_survive_sampling_mice_mostly_vanish() {
        let mut m = monitor(10);
        // One 50 MB elephant and 200 single-packet mice per interval.
        for i in 0..=11u64 {
            let mut entries = vec![(1u64, 5 * MB)];
            for k in 0..200u64 {
                entries.push((1000 + k, 1000));
            }
            m.on_interval(&[(0, entries)], i * MS);
        }
        let fsd = m.last_export.clone().expect("exported");
        // The elephant (50 MB total ≈ 52k packets, ~520 samples) is
        // detected; 1:100 sampling misses most one-packet mice, so flow
        // mass is far below the ~2400 true flows.
        assert!(fsd.elephant_share() > 0.5);
        assert!(fsd.flow_mass() < 500.0, "mass {}", fsd.flow_mass());
    }

    #[test]
    fn sampling_estimate_is_unbiased_for_large_flows() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000u64;
        let p = 0.01;
        let mut total = 0u64;
        for _ in 0..50 {
            total += NetFlowMonitor::sample_binomial(&mut rng, n, p);
        }
        let mean = total as f64 / 50.0;
        assert!((mean - 1000.0).abs() < 50.0, "mean {mean}");
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(NetFlowMonitor::sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(NetFlowMonitor::sample_binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(NetFlowMonitor::sample_binomial(&mut rng, 10, 1.0), 10);
        let s = NetFlowMonitor::sample_binomial(&mut rng, 1_000_000, 0.5);
        assert!(s <= 1_000_000);
    }
}
