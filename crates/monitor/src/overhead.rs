//! Table IV accounting: data transferred between the controller and the
//! switch/RNIC agents.
//!
//! The paper reports per-interval transfer sizes (switches→controller
//! 520 B, RNICs→controller 12 B, controller→devices 76 B). We measure the
//! same three channels from our own wire formats so `exp_table4` can
//! report the reproduction's numbers next to the paper's.

use serde::{Deserialize, Serialize};

/// Byte counters for the three controller channels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferLedger {
    /// Switch agents → controller (local FSDs + switch metrics).
    pub switch_to_controller: u64,
    /// RNIC agents → controller (RTT + PFC metrics).
    pub rnic_to_controller: u64,
    /// Controller → switches & RNICs (DCQCN parameter dispatch).
    pub controller_to_devices: u64,
    /// Intervals accounted.
    pub intervals: u64,
}

impl TransferLedger {
    /// Start an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one monitor interval's transfers.
    pub fn record_interval(&mut self, switch_upload: u64, rnic_upload: u64, dispatch: u64) {
        self.switch_to_controller += switch_upload;
        self.rnic_to_controller += rnic_upload;
        self.controller_to_devices += dispatch;
        self.intervals += 1;
    }

    /// Mean bytes per interval on each channel
    /// `(switch→ctrl, rnic→ctrl, ctrl→devices)`.
    pub fn per_interval(&self) -> (f64, f64, f64) {
        let n = self.intervals.max(1) as f64;
        (
            self.switch_to_controller as f64 / n,
            self.rnic_to_controller as f64 / n,
            self.controller_to_devices as f64 / n,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_over_intervals() {
        let mut l = TransferLedger::new();
        l.record_interval(500, 12, 76);
        l.record_interval(540, 12, 0); // no dispatch when tuning idle
        let (s, r, c) = l.per_interval();
        assert_eq!(s, 520.0);
        assert_eq!(r, 12.0);
        assert_eq!(c, 38.0);
        assert_eq!(l.intervals, 2);
    }

    #[test]
    fn empty_ledger_is_zero() {
        let l = TransferLedger::new();
        assert_eq!(l.per_interval(), (0.0, 0.0, 0.0));
    }
}
