//! PARALEON's own monitoring scheme: per-ToR sliding-window classifiers
//! over drained sketch readings, merged into the network-wide FSD.
//!
//! This is the control-plane half of §III-B: the data plane (Elastic
//! Sketch with TOS dedup) lives in the simulator's switches; this module
//! is the "switch control plane agent" that runs every λ_MI, plus the
//! per-interval upload accounting.

use std::collections::HashMap;

use paraleon_sketch::{Fsd, SlidingWindowClassifier, WindowConfig};

use crate::{FsdMonitor, FsdUpload, Nanos, PointId, SketchReadings};

/// Monitor intervals a measurement point may stay silent before its
/// classifier state is discarded (see [`ParaleonMonitor::with_max_idle`]).
pub const DEFAULT_MAX_IDLE_INTERVALS: u64 = 32;

/// PARALEON's layered FSD monitor (Keypoint 2 on top of Keypoint 1).
#[derive(Debug)]
pub struct ParaleonMonitor {
    cfg: WindowConfig,
    /// One classifier per measurement point (lazy-created).
    agents: HashMap<PointId, SlidingWindowClassifier>,
    /// Interval index each point last uploaded at.
    last_seen: HashMap<PointId, u64>,
    /// Next upload sequence number per point (control-plane mode).
    seqs: HashMap<PointId, u64>,
    /// Intervals processed so far.
    interval: u64,
    /// Silence tolerance before a point's state is aged out.
    max_idle_intervals: u64,
    /// Measurement points aged out so far (statistics).
    aged_out: u64,
    uploaded: u64,
    last_fsd: Fsd,
}

impl ParaleonMonitor {
    /// Create with the given ternary-state configuration (τ, δ).
    pub fn new(cfg: WindowConfig) -> Self {
        Self {
            cfg,
            agents: HashMap::new(),
            last_seen: HashMap::new(),
            seqs: HashMap::new(),
            interval: 0,
            max_idle_intervals: DEFAULT_MAX_IDLE_INTERVALS,
            aged_out: 0,
            uploaded: 0,
            last_fsd: Fsd::empty(),
        }
    }

    /// Override how many intervals a switch may stop uploading before
    /// its classifier state is discarded. A dead switch's stale window
    /// must not linger: it holds control-plane memory and would resume
    /// with out-of-date flow history after a long outage.
    pub fn with_max_idle(mut self, intervals: u64) -> Self {
        self.max_idle_intervals = intervals.max(1);
        self
    }

    /// The per-switch classifier configuration.
    pub fn window_config(&self) -> &WindowConfig {
        &self.cfg
    }

    /// Number of live per-point classifiers.
    pub fn n_agents(&self) -> usize {
        self.agents.len()
    }

    /// Measurement points whose state was aged out after prolonged
    /// silence.
    pub fn aged_out(&self) -> u64 {
        self.aged_out
    }

    /// Current network-wide FSD (last merge result).
    pub fn current_fsd(&self) -> &Fsd {
        &self.last_fsd
    }

    /// Total control-plane memory across switch agents (Table IV).
    pub fn control_plane_memory_bytes(&self) -> usize {
        self.agents.values().map(|a| a.memory_bytes()).sum()
    }

    /// The fabric-side half of one interval: run every reporting point's
    /// classifier, account its upload, and age out points that stopped
    /// reporting. Returns the per-point local FSDs in `readings` order
    /// (the central merge and the per-point upload path share this).
    fn ingest_points(&mut self, readings: &SketchReadings) -> Vec<(PointId, Fsd)> {
        self.interval += 1;
        let mut locals = Vec::with_capacity(readings.len());
        // Only points that actually uploaded contribute: a dead switch
        // is skipped entirely rather than averaged in as zeros.
        for (point, entries) in readings {
            let agent = self
                .agents
                .entry(*point)
                .or_insert_with(|| SlidingWindowClassifier::new(self.cfg));
            self.last_seen.insert(*point, self.interval);
            agent.end_interval(entries.iter().copied());
            let local = agent.local_fsd();
            // Layered upload: each switch ships only its local FSD.
            self.uploaded += local.wire_size_bytes() as u64;
            locals.push((*point, local));
        }
        // Age out points that stopped reporting: their window history is
        // stale and must not survive a prolonged outage.
        let horizon = self.interval.saturating_sub(self.max_idle_intervals);
        let interval = self.interval;
        let last_seen = &mut self.last_seen;
        let before = self.agents.len();
        self.agents.retain(|point, _| {
            let seen = last_seen.get(point).copied().unwrap_or(interval);
            seen > horizon
        });
        if self.agents.len() < before {
            self.aged_out += (before - self.agents.len()) as u64;
            last_seen.retain(|_, &mut seen| seen > horizon);
        }
        locals
    }
}

impl FsdMonitor for ParaleonMonitor {
    fn on_interval(&mut self, readings: &SketchReadings, _now: Nanos) -> Option<Fsd> {
        let mut network = Fsd::empty();
        for (_, local) in self.ingest_points(readings) {
            network.merge(&local);
        }
        self.last_fsd = network.clone();
        Some(network)
    }

    fn uploads(&mut self, readings: &SketchReadings, _now: Nanos, interval: u64) -> Vec<FsdUpload> {
        // Layered by construction: each point ships its own local FSD
        // with a per-point monotone sequence number — no synthetic
        // central wrapper needed.
        let locals = self.ingest_points(readings);
        locals
            .into_iter()
            .map(|(point, fsd)| {
                let seq = self.seqs.entry(point).or_insert(0);
                let this = *seq;
                *seq += 1;
                FsdUpload {
                    point,
                    seq: this,
                    interval,
                    fsd,
                }
            })
            .collect()
    }

    fn uploaded_bytes(&self) -> u64 {
        self.uploaded
    }

    fn name(&self) -> &'static str {
        "PARALEON"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn monitor() -> ParaleonMonitor {
        ParaleonMonitor::new(WindowConfig::default())
    }

    #[test]
    fn classifies_across_intervals_like_the_window() {
        let mut m = monitor();
        // A flow trickling 0.2 MB per interval through switch 0: mice for
        // two intervals, PE from the third, elephant once Φ ≥ 1 MB.
        let step = 200 * 1024;
        let mut shares = Vec::new();
        for _ in 0..6 {
            let fsd = m
                .on_interval(&[(0, vec![(7, step)])], 0)
                .expect("always returns an fsd");
            shares.push(fsd.elephant_share());
        }
        assert_eq!(shares[0], 0.0);
        assert_eq!(shares[1], 0.0);
        assert!(shares[2] > 0.0, "PE contribution appears at MI3");
        assert!(shares[3] > shares[2], "PE likelihood refines upward");
        assert!(shares[5] > 0.99, "Φ = 1.2 MB ≥ τ: full elephant");
    }

    #[test]
    fn merges_multiple_switches() {
        let mut m = monitor();
        let fsd = m
            .on_interval(
                &[(0, vec![(1, 5 * MB)]), (1, vec![(2, 2_000), (3, 3_000)])],
                0,
            )
            .unwrap();
        assert!((fsd.flow_mass() - 3.0).abs() < 1e-9);
        assert!(fsd.elephant_share() > 0.99);
    }

    #[test]
    fn upload_accounting_grows_per_switch_per_interval() {
        let mut m = monitor();
        m.on_interval(&[(0, vec![(1, 100)]), (1, vec![(2, 100)])], 0);
        let per_switch = Fsd::empty().wire_size_bytes() as u64;
        assert_eq!(m.uploaded_bytes(), 2 * per_switch);
        m.on_interval(&[(0, vec![(1, 100)])], 1);
        assert_eq!(m.uploaded_bytes(), 3 * per_switch);
    }

    #[test]
    fn congested_elephant_stays_elephant() {
        // The headline fix over naive ES: an elephant throttled below τ
        // per interval keeps its state thanks to history.
        let mut m = monitor();
        m.on_interval(&[(0, vec![(9, 2 * MB)])], 0);
        for _ in 0..4 {
            let fsd = m.on_interval(&[(0, vec![(9, 10_000)])], 0).unwrap();
            assert!(
                fsd.elephant_share() > 0.99,
                "history must keep the flow an elephant"
            );
        }
    }

    #[test]
    fn missing_upload_does_not_poison_the_merge() {
        let mut m = monitor();
        // Two switches each see an elephant.
        m.on_interval(&[(0, vec![(1, 5 * MB)]), (1, vec![(2, 5 * MB)])], 0);
        // Switch 1 dies: only switch 0 uploads. The network FSD must be
        // built from switch 0 alone — not dragged down by zeros for the
        // silent switch.
        let fsd = m.on_interval(&[(0, vec![(1, 5 * MB)])], 1).unwrap();
        assert!((fsd.flow_mass() - 1.0).abs() < 1e-9);
        assert!(fsd.elephant_share() > 0.99);
    }

    #[test]
    fn silent_points_age_out_after_the_idle_horizon() {
        let mut m = monitor().with_max_idle(3);
        m.on_interval(&[(0, vec![(1, MB)]), (1, vec![(2, MB)])], 0);
        assert_eq!(m.n_agents(), 2);
        // Switch 1 goes silent; its classifier survives the tolerance
        // window, then is discarded on the third silent interval.
        for _ in 0..2 {
            m.on_interval(&[(0, vec![(1, MB)])], 0);
            assert_eq!(m.n_agents(), 2, "within tolerance: state retained");
        }
        m.on_interval(&[(0, vec![(1, MB)])], 0);
        assert_eq!(m.n_agents(), 1, "past tolerance: state aged out");
        assert_eq!(m.aged_out(), 1);
        // If it comes back, it restarts with a fresh window (no stale
        // elephant history).
        let fsd = m.on_interval(&[(1, vec![(9, 1_000)])], 0).unwrap();
        assert_eq!(m.n_agents(), 2);
        assert!(fsd.elephant_share() < 0.01, "fresh window, mice only");
    }

    #[test]
    fn upload_path_matches_central_merge_bit_for_bit() {
        // Two identical monitors, one driven through `on_interval`
        // (central merge), one through `uploads` + a StalenessMerger
        // (control-plane path, clean channel): the network FSDs must be
        // byte-identical every interval.
        let mut central = monitor();
        let mut layered = monitor();
        let mut merger = crate::StalenessMerger::default();
        for k in 0..6u64 {
            let readings = [(0, vec![(7, 300 * 1024)]), (1, vec![(8, 2 * MB)])];
            let want = central.on_interval(&readings, 0).unwrap();
            let ups = layered.uploads(&readings, 0, k);
            assert_eq!(ups.len(), 2);
            assert!(ups.iter().all(|u| u.seq == k), "per-point monotone seq");
            for u in ups {
                assert!(merger.ingest(u));
            }
            let got = merger.network_fsd(k);
            assert_eq!(got, want, "interval {k}");
        }
        assert_eq!(central.uploaded_bytes(), layered.uploaded_bytes());
    }

    #[test]
    fn control_plane_memory_tracks_flows() {
        let mut m = monitor();
        m.on_interval(&[(0, (0..10u64).map(|f| (f, 1000u64)).collect())], 0);
        assert!(m.control_plane_memory_bytes() > 0);
    }
}
