//! PARALEON's own monitoring scheme: per-ToR sliding-window classifiers
//! over drained sketch readings, merged into the network-wide FSD.
//!
//! This is the control-plane half of §III-B: the data plane (Elastic
//! Sketch with TOS dedup) lives in the simulator's switches; this module
//! is the "switch control plane agent" that runs every λ_MI, plus the
//! per-interval upload accounting.

use std::collections::HashMap;

use paraleon_sketch::{Fsd, SlidingWindowClassifier, WindowConfig};

use crate::{FsdMonitor, Nanos, PointId, SketchReadings};

/// PARALEON's layered FSD monitor (Keypoint 2 on top of Keypoint 1).
#[derive(Debug)]
pub struct ParaleonMonitor {
    cfg: WindowConfig,
    /// One classifier per measurement point (lazy-created).
    agents: HashMap<PointId, SlidingWindowClassifier>,
    uploaded: u64,
    last_fsd: Fsd,
}

impl ParaleonMonitor {
    /// Create with the given ternary-state configuration (τ, δ).
    pub fn new(cfg: WindowConfig) -> Self {
        Self {
            cfg,
            agents: HashMap::new(),
            uploaded: 0,
            last_fsd: Fsd::empty(),
        }
    }

    /// The per-switch classifier configuration.
    pub fn window_config(&self) -> &WindowConfig {
        &self.cfg
    }

    /// Current network-wide FSD (last merge result).
    pub fn current_fsd(&self) -> &Fsd {
        &self.last_fsd
    }

    /// Total control-plane memory across switch agents (Table IV).
    pub fn control_plane_memory_bytes(&self) -> usize {
        self.agents.values().map(|a| a.memory_bytes()).sum()
    }
}

impl FsdMonitor for ParaleonMonitor {
    fn on_interval(&mut self, readings: &SketchReadings, _now: Nanos) -> Option<Fsd> {
        let mut network = Fsd::empty();
        for (point, entries) in readings {
            let agent = self
                .agents
                .entry(*point)
                .or_insert_with(|| SlidingWindowClassifier::new(self.cfg));
            agent.end_interval(entries.iter().copied());
            let local = agent.local_fsd();
            // Layered upload: each switch ships only its local FSD.
            self.uploaded += local.wire_size_bytes() as u64;
            network.merge(&local);
        }
        self.last_fsd = network.clone();
        Some(network)
    }

    fn uploaded_bytes(&self) -> u64 {
        self.uploaded
    }

    fn name(&self) -> &'static str {
        "PARALEON"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn monitor() -> ParaleonMonitor {
        ParaleonMonitor::new(WindowConfig::default())
    }

    #[test]
    fn classifies_across_intervals_like_the_window() {
        let mut m = monitor();
        // A flow trickling 0.2 MB per interval through switch 0: mice for
        // two intervals, PE from the third, elephant once Φ ≥ 1 MB.
        let step = 200 * 1024;
        let mut shares = Vec::new();
        for _ in 0..6 {
            let fsd = m
                .on_interval(&[(0, vec![(7, step)])], 0)
                .expect("always returns an fsd");
            shares.push(fsd.elephant_share());
        }
        assert_eq!(shares[0], 0.0);
        assert_eq!(shares[1], 0.0);
        assert!(shares[2] > 0.0, "PE contribution appears at MI3");
        assert!(shares[3] > shares[2], "PE likelihood refines upward");
        assert!(shares[5] > 0.99, "Φ = 1.2 MB ≥ τ: full elephant");
    }

    #[test]
    fn merges_multiple_switches() {
        let mut m = monitor();
        let fsd = m
            .on_interval(
                &[(0, vec![(1, 5 * MB)]), (1, vec![(2, 2_000), (3, 3_000)])],
                0,
            )
            .unwrap();
        assert!((fsd.flow_mass() - 3.0).abs() < 1e-9);
        assert!(fsd.elephant_share() > 0.99);
    }

    #[test]
    fn upload_accounting_grows_per_switch_per_interval() {
        let mut m = monitor();
        m.on_interval(&[(0, vec![(1, 100)]), (1, vec![(2, 100)])], 0);
        let per_switch = Fsd::empty().wire_size_bytes() as u64;
        assert_eq!(m.uploaded_bytes(), 2 * per_switch);
        m.on_interval(&[(0, vec![(1, 100)])], 1);
        assert_eq!(m.uploaded_bytes(), 3 * per_switch);
    }

    #[test]
    fn congested_elephant_stays_elephant() {
        // The headline fix over naive ES: an elephant throttled below τ
        // per interval keeps its state thanks to history.
        let mut m = monitor();
        m.on_interval(&[(0, vec![(9, 2 * MB)])], 0);
        for _ in 0..4 {
            let fsd = m.on_interval(&[(0, vec![(9, 10_000)])], 0).unwrap();
            assert!(
                fsd.elephant_share() > 0.99,
                "history must keep the flow an elephant"
            );
        }
    }

    #[test]
    fn control_plane_memory_tracks_flows() {
        let mut m = monitor();
        m.on_interval(&[(0, (0..10u64).map(|f| (f, 1000u64)).collect())], 0);
        assert!(m.control_plane_memory_bytes() > 0);
    }
}
