//! Property-based tests for the workload generators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use paraleon_workloads::{
    AllToAll, AllToAllConfig, Collective, FlowSizeDist, PipelineBurst, PipelineConfig,
    PoissonConfig, PoissonWorkload, Progress, RingAllreduce, RingConfig, TreeAllreduce, TreeConfig,
};

/// Drive `rounds` rounds of any collective to completion, checking the
/// barrier invariant (waves only advance when fully drained) and
/// returning the total number of flows seen.
fn drive_collective(c: &mut dyn Collective, rounds: u32) -> usize {
    let mut t = 0u64;
    let mut total = 0usize;
    for _ in 0..rounds {
        let first = c.start_round(t).expect("round start while idle");
        assert!(!first.is_empty());
        let mut pending = first.len();
        total += pending;
        loop {
            t += 1;
            pending -= 1;
            match c.on_flow_done(t).expect("completion with round in flight") {
                Progress::Pending => assert!(pending > 0, "Pending with wave drained"),
                Progress::NextWave(flows) => {
                    assert_eq!(pending, 0, "barrier released early");
                    assert!(!flows.is_empty());
                    pending = flows.len();
                    total += flows.len();
                }
                Progress::RoundDone { next_round } => {
                    assert_eq!(pending, 0, "round ended with flows in flight");
                    match next_round {
                        Some(nr) => {
                            assert!(!c.finished());
                            assert!(nr >= t);
                            t = nr;
                        }
                        None => assert!(c.finished()),
                    }
                    break;
                }
            }
        }
    }
    total
}

/// Strategy for valid CDF control points: strictly increasing sizes and
/// non-decreasing CDF values spanning [0, 1].
fn cdf_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (2usize..8).prop_flat_map(|n| {
        (
            prop::collection::vec(1.0f64..1e3, n), // size multipliers
            prop::collection::vec(0.01f64..1.0, n - 2),
        )
            .prop_map(|(mults, mids)| {
                let mut sizes = Vec::with_capacity(mults.len());
                let mut acc = 10.0;
                for m in &mults {
                    acc += m;
                    sizes.push(acc);
                }
                let mut cdfs = vec![0.0];
                let mut mids = mids;
                mids.sort_by(|a, b| a.partial_cmp(b).unwrap());
                cdfs.extend(mids);
                cdfs.push(1.0);
                sizes.into_iter().zip(cdfs).collect()
            })
    })
}

proptest! {
    /// For any valid CDF, the quantile function is monotone and lands
    /// inside the support.
    #[test]
    fn quantile_monotone_and_in_support(points in cdf_points()) {
        let d = FlowSizeDist::from_points("prop", &points);
        let lo = points.first().unwrap().0;
        let hi = points.last().unwrap().0;
        let mut last = 0u64;
        for k in 0..=50 {
            let q = d.quantile(k as f64 / 50.0);
            prop_assert!(q >= last);
            prop_assert!(q as f64 >= lo.floor() - 1.0);
            prop_assert!(q as f64 <= hi.ceil() + 1.0);
            last = q;
        }
    }

    /// Samples always land within the distribution's support.
    #[test]
    fn samples_in_support(points in cdf_points(), seed in 0u64..1000) {
        let d = FlowSizeDist::from_points("prop", &points);
        let lo = points.first().unwrap().0;
        let hi = points.last().unwrap().0;
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let s = d.sample(&mut rng) as f64;
            prop_assert!(s >= lo.floor() - 1.0 && s <= hi.ceil() + 1.0);
        }
    }

    /// Poisson schedules are time-sorted with valid endpoints, for any
    /// host count / load / window.
    #[test]
    fn poisson_schedules_are_well_formed(
        hosts in 2usize..40,
        load in 0.05f64..1.0,
        window_us in 100u64..5_000,
        seed in 0u64..1000,
    ) {
        let wl = PoissonWorkload::new(
            PoissonConfig {
                hosts,
                host_bw_bytes_per_sec: 12.5e9,
                load,
                start: 0,
                end: window_us * 1_000,
            },
            FlowSizeDist::solar_rpc(),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let flows = wl.generate(&mut rng);
        for w in flows.windows(2) {
            prop_assert!(w[0].start <= w[1].start);
        }
        for f in &flows {
            prop_assert!(f.src < hosts && f.dst < hosts && f.src != f.dst);
            prop_assert!(f.start < window_us * 1_000);
            prop_assert!(f.bytes > 0);
        }
    }

    /// Alltoall rounds always contain exactly n·(n−1) distinct pairs and
    /// the state machine's accounting never goes negative.
    #[test]
    fn alltoall_round_accounting(n in 2usize..12, rounds in 1u32..4) {
        let mut a2a = AllToAll::new(AllToAllConfig {
            workers: (0..n).collect(),
            message_bytes: 1000,
            off_time: 10,
            rounds: Some(rounds),
        });
        let mut t = 0u64;
        for _ in 0..rounds {
            let flows = a2a.start_round(t).unwrap();
            prop_assert_eq!(flows.len(), n * (n - 1));
            let mut next = None;
            for _ in 0..flows.len() {
                t += 1;
                next = a2a.on_flow_done(t).unwrap();
            }
            if a2a.finished() {
                prop_assert!(next.is_none());
            } else {
                let nr = next.expect("next round scheduled");
                prop_assert!(nr >= t + 10);
                t = nr;
            }
        }
        prop_assert!(a2a.finished());
        prop_assert_eq!(a2a.round_durations.len(), rounds as usize);
    }

    /// `fixed(b)` samples exactly `b` for any `b` — the regression the
    /// ramp-CDF encoding failed (it could emit `b−1`, and bumped
    /// `fixed(1)` to 2).
    #[test]
    fn fixed_dist_is_exact_for_any_size(bytes in 1u64..1 << 40, seed in 0u64..1000) {
        let d = FlowSizeDist::fixed(bytes);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert_eq!(d.sample(&mut rng), bytes);
        }
    }

    /// Ring allreduce: every round is 2(n−1) waves of n chunk flows,
    /// barrier-separated, and all configured rounds account a duration.
    #[test]
    fn ring_allreduce_accounting(n in 2usize..10, rounds in 1u32..4) {
        let mut ring = RingAllreduce::new(RingConfig {
            workers: (0..n).collect(),
            message_bytes: 10_000,
            off_time: 10,
            rounds: Some(rounds),
        });
        let total = drive_collective(&mut ring, rounds);
        prop_assert_eq!(total, rounds as usize * 2 * (n - 1) * n);
        prop_assert!(ring.finished());
        prop_assert_eq!(ring.round_durations().len(), rounds as usize);
    }

    /// Tree allreduce: a round carries each of the n−1 tree edges once
    /// up and once down.
    #[test]
    fn tree_allreduce_accounting(n in 2usize..17, rounds in 1u32..3) {
        let mut tree = TreeAllreduce::new(TreeConfig {
            workers: (0..n).collect(),
            message_bytes: 10_000,
            off_time: 10,
            rounds: Some(rounds),
        });
        let total = drive_collective(&mut tree, rounds);
        prop_assert_eq!(total, rounds as usize * 2 * (n - 1));
        prop_assert!(tree.finished());
        prop_assert_eq!(tree.round_durations().len(), rounds as usize);
    }

    /// Pipeline bursts: one wave of n−1 neighbor flows per microbatch.
    #[test]
    fn pipeline_burst_accounting(n in 2usize..10, mb in 1u32..5, rounds in 1u32..3) {
        let mut pipe = PipelineBurst::new(PipelineConfig {
            workers: (0..n).collect(),
            microbatch_bytes: 10_000,
            microbatches: mb,
            off_time: 10,
            rounds: Some(rounds),
        });
        let total = drive_collective(&mut pipe, rounds);
        prop_assert_eq!(total, rounds as usize * mb as usize * (n - 1));
        prop_assert!(pipe.finished());
        prop_assert_eq!(pipe.round_durations().len(), rounds as usize);
    }
}
