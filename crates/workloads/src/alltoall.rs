//! Synchronized alltoall collectives with an ON-OFF compute cycle —
//! the paper's LLM-training workload.
//!
//! During the ON period every worker sends the same message size to every
//! other worker (`n·(n−1)` simultaneous flows — the most incast-prone
//! collective, which is why the paper picks alltoall over ring/tree
//! allreduce). When the **last** flow of the round completes, all workers
//! enter an OFF period (model update, paper default 20 ms) and then start
//! the next round.
//!
//! [`AllToAll`] is a round state machine implementing
//! [`crate::Collective`]: the embedding simulator calls
//! [`AllToAll::start_round`] to obtain the round's flows and
//! [`AllToAll::on_flow_done`] at each completion; the latter returns the
//! start time of the next round once the round drains. Misuse (driving a
//! finished machine, completions with no round in flight — states hunt
//! mutations can reach) reports a typed [`CollectiveError`] instead of
//! panicking, and the final round's duration is recorded *before* the
//! finished check so bounded runs never lose their last data point.

use crate::collective::{Collective, CollectiveError, Progress};
use crate::{FlowRequest, HostId, Nanos};

/// Configuration of an ON-OFF alltoall workload.
#[derive(Debug, Clone)]
pub struct AllToAllConfig {
    /// Participating workers (simulator host ids).
    pub workers: Vec<HostId>,
    /// Message size each worker sends to each peer, bytes (paper: 12 MB).
    pub message_bytes: u64,
    /// OFF (compute) period between rounds, ns (paper: 20 ms).
    pub off_time: Nanos,
    /// Number of rounds to run; `None` = unbounded.
    pub rounds: Option<u32>,
}

/// Round state machine for the alltoall collective.
#[derive(Debug, Clone)]
pub struct AllToAll {
    cfg: AllToAllConfig,
    /// Flows still pending in the current round.
    outstanding: usize,
    /// Rounds fully completed.
    pub rounds_done: u32,
    /// Completion time of the last finished round.
    pub last_round_end: Option<Nanos>,
    /// Start time of the current round (if one is running).
    round_start: Option<Nanos>,
    /// Per-round durations (FCT of the collective), for the harness.
    pub round_durations: Vec<Nanos>,
}

impl AllToAll {
    /// Create the state machine. Panics on fewer than two workers.
    pub fn new(cfg: AllToAllConfig) -> Self {
        assert!(cfg.workers.len() >= 2, "alltoall needs >= 2 workers");
        assert!(cfg.message_bytes > 0);
        Self {
            cfg,
            outstanding: 0,
            rounds_done: 0,
            last_round_end: None,
            round_start: None,
            round_durations: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AllToAllConfig {
        &self.cfg
    }

    /// Whether a round is currently in flight.
    pub fn round_active(&self) -> bool {
        self.outstanding > 0
    }

    /// Whether all configured rounds have completed.
    pub fn finished(&self) -> bool {
        match self.cfg.rounds {
            Some(r) => self.rounds_done >= r && !self.round_active(),
            None => false,
        }
    }

    /// Begin a round at `now`: returns the full-mesh flow set, or a
    /// typed error if a round is already active or the workload is
    /// finished.
    pub fn start_round(&mut self, now: Nanos) -> Result<Vec<FlowRequest>, CollectiveError> {
        if self.round_active() {
            return Err(CollectiveError::RoundInFlight);
        }
        if self.finished() {
            return Err(CollectiveError::Finished);
        }
        let n = self.cfg.workers.len();
        let mut flows = Vec::with_capacity(n * (n - 1));
        for (i, &src) in self.cfg.workers.iter().enumerate() {
            for (j, &dst) in self.cfg.workers.iter().enumerate() {
                if i != j {
                    flows.push(FlowRequest {
                        src,
                        dst,
                        bytes: self.cfg.message_bytes,
                        start: now,
                    });
                }
            }
        }
        self.outstanding = flows.len();
        self.round_start = Some(now);
        Ok(flows)
    }

    /// Record one flow completion at `now`. When the round drains, the
    /// round's duration is accounted first, then `Ok(Some(next_round_
    /// start))` (i.e. `now + off_time`) is returned unless all rounds
    /// are done (`Ok(None)`). `Err(NoRoundInFlight)` if no round is in
    /// flight.
    pub fn on_flow_done(&mut self, now: Nanos) -> Result<Option<Nanos>, CollectiveError> {
        if self.outstanding == 0 {
            return Err(CollectiveError::NoRoundInFlight);
        }
        self.outstanding -= 1;
        if self.outstanding > 0 {
            return Ok(None);
        }
        // Account the round *before* the finished check: the final
        // round of a bounded run must land in `round_durations` too.
        self.rounds_done += 1;
        self.last_round_end = Some(now);
        if let Some(start) = self.round_start.take() {
            self.round_durations.push(now.saturating_sub(start));
        }
        if self.finished() {
            Ok(None)
        } else {
            Ok(Some(now + self.cfg.off_time))
        }
    }

    /// Bytes moved per round (diagnostics / bandwidth computation):
    /// `n·(n−1)·message_bytes`.
    pub fn bytes_per_round(&self) -> u64 {
        let n = self.cfg.workers.len() as u64;
        n * (n - 1) * self.cfg.message_bytes
    }

    /// NCCL-style alltoall "algorithm bandwidth" for a finished round
    /// `idx`: per-rank payload divided by round duration, in bytes/sec.
    /// NCCL defines algbw = total message size per rank / time.
    pub fn algbw_bytes_per_sec(&self, idx: usize) -> Option<f64> {
        let d = *self.round_durations.get(idx)?;
        if d == 0 {
            return None;
        }
        let n = self.cfg.workers.len() as f64;
        let per_rank = (n - 1.0) * self.cfg.message_bytes as f64;
        Some(per_rank / (d as f64 / 1e9))
    }
}

impl Collective for AllToAll {
    fn name(&self) -> &'static str {
        "alltoall"
    }

    fn workers(&self) -> &[HostId] {
        &self.cfg.workers
    }

    fn round_active(&self) -> bool {
        AllToAll::round_active(self)
    }

    fn finished(&self) -> bool {
        AllToAll::finished(self)
    }

    fn rounds_done(&self) -> u32 {
        self.rounds_done
    }

    fn round_durations(&self) -> &[Nanos] {
        &self.round_durations
    }

    fn bytes_per_round(&self) -> u64 {
        AllToAll::bytes_per_round(self)
    }

    fn per_rank_bytes(&self) -> u64 {
        (self.cfg.workers.len() as u64 - 1) * self.cfg.message_bytes
    }

    fn start_round(&mut self, now: Nanos) -> Result<Vec<FlowRequest>, CollectiveError> {
        AllToAll::start_round(self, now)
    }

    fn on_flow_done(&mut self, now: Nanos) -> Result<Progress, CollectiveError> {
        let next = AllToAll::on_flow_done(self, now)?;
        if AllToAll::round_active(self) {
            Ok(Progress::Pending)
        } else {
            // Alltoall is a single wave, so a drained wave is a
            // drained round.
            Ok(Progress::RoundDone { next_round: next })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a2a(n: usize, rounds: Option<u32>) -> AllToAll {
        AllToAll::new(AllToAllConfig {
            workers: (0..n).collect(),
            message_bytes: 1 << 20,
            off_time: 20_000_000,
            rounds,
        })
    }

    #[test]
    fn round_is_a_full_mesh() {
        let mut w = a2a(4, None);
        let flows = w.start_round(0).unwrap();
        assert_eq!(flows.len(), 12);
        for f in &flows {
            assert_ne!(f.src, f.dst);
            assert_eq!(f.bytes, 1 << 20);
            assert_eq!(f.start, 0);
        }
        // Every ordered pair exactly once.
        let mut pairs: Vec<_> = flows.iter().map(|f| (f.src, f.dst)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 12);
    }

    #[test]
    fn next_round_starts_after_off_time() {
        let mut w = a2a(3, None);
        let flows = w.start_round(100).unwrap();
        let mut next = None;
        for k in 0..flows.len() {
            next = w.on_flow_done(1000 + k as Nanos).unwrap();
        }
        assert_eq!(next, Some(1005 + 20_000_000));
        assert_eq!(w.rounds_done, 1);
        assert_eq!(w.round_durations, vec![905]);
    }

    #[test]
    fn bounded_rounds_finish() {
        let mut w = a2a(2, Some(2));
        for round in 0..2 {
            let flows = w.start_round(round * 1000).unwrap();
            assert!(!w.finished());
            for k in 0..flows.len() {
                w.on_flow_done(round * 1000 + 10 + k as Nanos).unwrap();
            }
        }
        assert!(w.finished());
    }

    /// The final round of a bounded run is fully accounted: its
    /// duration is recorded before the finished early-return, so a
    /// 2-round run reports 2 durations (satellite regression).
    #[test]
    fn final_round_duration_is_recorded_when_bounded() {
        let mut w = a2a(2, Some(2));
        for round in 0u64..2 {
            let start = round * 1_000_000;
            let flows = w.start_round(start).unwrap();
            for k in 0..flows.len() {
                w.on_flow_done(start + 500 + k as Nanos).unwrap();
            }
        }
        assert!(w.finished());
        assert_eq!(w.round_durations, vec![501, 501]);
        assert_eq!(w.last_round_end, Some(1_000_501));
    }

    #[test]
    fn algbw_matches_definition() {
        let mut w = a2a(4, Some(1));
        let flows = w.start_round(0).unwrap();
        let end = 1_000_000; // 1 ms round
        for _ in 0..flows.len() {
            w.on_flow_done(end).unwrap();
        }
        let algbw = w.algbw_bytes_per_sec(0).unwrap();
        let expect = 3.0 * (1 << 20) as f64 / 1e-3;
        assert!((algbw - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn misuse_reports_typed_errors() {
        let mut w = a2a(3, Some(1));
        // Completion with no round in flight.
        assert_eq!(w.on_flow_done(0), Err(CollectiveError::NoRoundInFlight));
        // Overlapping rounds.
        let flows = w.start_round(0).unwrap();
        assert_eq!(w.start_round(1), Err(CollectiveError::RoundInFlight));
        for k in 0..flows.len() {
            w.on_flow_done(10 + k as Nanos).unwrap();
        }
        // Starting past the configured round budget.
        assert_eq!(w.start_round(100), Err(CollectiveError::Finished));
        // And the stray completion after the last round.
        assert_eq!(w.on_flow_done(100), Err(CollectiveError::NoRoundInFlight));
    }

    #[test]
    fn bytes_per_round_formula() {
        let w = a2a(5, None);
        assert_eq!(w.bytes_per_round(), 5 * 4 * (1 << 20));
    }

    #[test]
    fn trait_object_reports_round_done_with_off_gap() {
        let mut w = a2a(2, Some(1));
        let c: &mut dyn Collective = &mut w;
        let flows = c.start_round(0).unwrap();
        assert_eq!(flows.len(), 2);
        assert_eq!(c.on_flow_done(10).unwrap(), Progress::Pending);
        assert_eq!(
            c.on_flow_done(20).unwrap(),
            Progress::RoundDone { next_round: None }
        );
        assert_eq!(c.per_rank_bytes(), 1 << 20);
        assert!(c.finished());
    }
}
