//! Synchronized alltoall collectives with an ON-OFF compute cycle —
//! the paper's LLM-training workload.
//!
//! During the ON period every worker sends the same message size to every
//! other worker (`n·(n−1)` simultaneous flows — the most incast-prone
//! collective, which is why the paper picks alltoall over ring/tree
//! allreduce). When the **last** flow of the round completes, all workers
//! enter an OFF period (model update, paper default 20 ms) and then start
//! the next round.
//!
//! [`AllToAll`] is a round state machine: the embedding simulator calls
//! [`AllToAll::start_round`] to obtain the round's flows and
//! [`AllToAll::on_flow_done`] at each completion; the latter returns the
//! start time of the next round once the round drains.

use crate::{FlowRequest, HostId, Nanos};

/// Configuration of an ON-OFF alltoall workload.
#[derive(Debug, Clone)]
pub struct AllToAllConfig {
    /// Participating workers (simulator host ids).
    pub workers: Vec<HostId>,
    /// Message size each worker sends to each peer, bytes (paper: 12 MB).
    pub message_bytes: u64,
    /// OFF (compute) period between rounds, ns (paper: 20 ms).
    pub off_time: Nanos,
    /// Number of rounds to run; `None` = unbounded.
    pub rounds: Option<u32>,
}

/// Round state machine for the alltoall collective.
#[derive(Debug, Clone)]
pub struct AllToAll {
    cfg: AllToAllConfig,
    /// Flows still pending in the current round.
    outstanding: usize,
    /// Rounds fully completed.
    pub rounds_done: u32,
    /// Completion time of the last finished round.
    pub last_round_end: Option<Nanos>,
    /// Start time of the current round (if one is running).
    round_start: Option<Nanos>,
    /// Per-round durations (FCT of the collective), for the harness.
    pub round_durations: Vec<Nanos>,
}

impl AllToAll {
    /// Create the state machine. Panics on fewer than two workers.
    pub fn new(cfg: AllToAllConfig) -> Self {
        assert!(cfg.workers.len() >= 2, "alltoall needs >= 2 workers");
        assert!(cfg.message_bytes > 0);
        Self {
            cfg,
            outstanding: 0,
            rounds_done: 0,
            last_round_end: None,
            round_start: None,
            round_durations: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AllToAllConfig {
        &self.cfg
    }

    /// Whether a round is currently in flight.
    pub fn round_active(&self) -> bool {
        self.outstanding > 0
    }

    /// Whether all configured rounds have completed.
    pub fn finished(&self) -> bool {
        match self.cfg.rounds {
            Some(r) => self.rounds_done >= r && !self.round_active(),
            None => false,
        }
    }

    /// Begin a round at `now`: returns the full-mesh flow set. Panics if a
    /// round is already active or the workload is finished.
    pub fn start_round(&mut self, now: Nanos) -> Vec<FlowRequest> {
        assert!(!self.round_active(), "previous round still in flight");
        assert!(!self.finished(), "workload already finished");
        let n = self.cfg.workers.len();
        let mut flows = Vec::with_capacity(n * (n - 1));
        for (i, &src) in self.cfg.workers.iter().enumerate() {
            for (j, &dst) in self.cfg.workers.iter().enumerate() {
                if i != j {
                    flows.push(FlowRequest {
                        src,
                        dst,
                        bytes: self.cfg.message_bytes,
                        start: now,
                    });
                }
            }
        }
        self.outstanding = flows.len();
        self.round_start = Some(now);
        flows
    }

    /// Record one flow completion at `now`. When the round drains, returns
    /// `Some(next_round_start)` (i.e. `now + off_time`) unless all rounds
    /// are done, in which case the round is accounted and `None` returned.
    pub fn on_flow_done(&mut self, now: Nanos) -> Option<Nanos> {
        assert!(self.outstanding > 0, "no round in flight");
        self.outstanding -= 1;
        if self.outstanding > 0 {
            return None;
        }
        self.rounds_done += 1;
        self.last_round_end = Some(now);
        if let Some(start) = self.round_start.take() {
            self.round_durations.push(now.saturating_sub(start));
        }
        if self.finished() {
            None
        } else {
            Some(now + self.cfg.off_time)
        }
    }

    /// Bytes moved per round (diagnostics / bandwidth computation):
    /// `n·(n−1)·message_bytes`.
    pub fn bytes_per_round(&self) -> u64 {
        let n = self.cfg.workers.len() as u64;
        n * (n - 1) * self.cfg.message_bytes
    }

    /// NCCL-style alltoall "algorithm bandwidth" for a finished round
    /// `idx`: per-rank payload divided by round duration, in bytes/sec.
    /// NCCL defines algbw = total message size per rank / time.
    pub fn algbw_bytes_per_sec(&self, idx: usize) -> Option<f64> {
        let d = *self.round_durations.get(idx)?;
        if d == 0 {
            return None;
        }
        let n = self.cfg.workers.len() as f64;
        let per_rank = (n - 1.0) * self.cfg.message_bytes as f64;
        Some(per_rank / (d as f64 / 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a2a(n: usize, rounds: Option<u32>) -> AllToAll {
        AllToAll::new(AllToAllConfig {
            workers: (0..n).collect(),
            message_bytes: 1 << 20,
            off_time: 20_000_000,
            rounds,
        })
    }

    #[test]
    fn round_is_a_full_mesh() {
        let mut w = a2a(4, None);
        let flows = w.start_round(0);
        assert_eq!(flows.len(), 12);
        for f in &flows {
            assert_ne!(f.src, f.dst);
            assert_eq!(f.bytes, 1 << 20);
            assert_eq!(f.start, 0);
        }
        // Every ordered pair exactly once.
        let mut pairs: Vec<_> = flows.iter().map(|f| (f.src, f.dst)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 12);
    }

    #[test]
    fn next_round_starts_after_off_time() {
        let mut w = a2a(3, None);
        let flows = w.start_round(100);
        let mut next = None;
        for k in 0..flows.len() {
            next = w.on_flow_done(1000 + k as Nanos);
        }
        assert_eq!(next, Some(1005 + 20_000_000));
        assert_eq!(w.rounds_done, 1);
        assert_eq!(w.round_durations, vec![905]);
    }

    #[test]
    fn bounded_rounds_finish() {
        let mut w = a2a(2, Some(2));
        for round in 0..2 {
            let flows = w.start_round(round * 1000);
            assert!(!w.finished());
            for k in 0..flows.len() {
                w.on_flow_done(round * 1000 + 10 + k as Nanos);
            }
        }
        assert!(w.finished());
    }

    #[test]
    fn algbw_matches_definition() {
        let mut w = a2a(4, Some(1));
        let flows = w.start_round(0);
        let end = 1_000_000; // 1 ms round
        for _ in 0..flows.len() {
            w.on_flow_done(end);
        }
        let algbw = w.algbw_bytes_per_sec(0).unwrap();
        let expect = 3.0 * (1 << 20) as f64 / 1e-3;
        assert!((algbw - expect).abs() / expect < 1e-9);
    }

    #[test]
    #[should_panic(expected = "previous round still in flight")]
    fn cannot_start_overlapping_rounds() {
        let mut w = a2a(3, None);
        w.start_round(0);
        w.start_round(1);
    }

    #[test]
    fn bytes_per_round_formula() {
        let w = a2a(5, None);
        assert_eq!(w.bytes_per_round(), 5 * 4 * (1 << 20));
    }
}
