//! Collective round machines behind a common [`Collective`] trait.
//!
//! The paper's LLM workload is a synchronized alltoall, but ROADMAP
//! item 2 asks whether PARALEON's dominant-flow-type guidance survives
//! *other* collectives — the ones NCCL actually schedules. This module
//! adds ring allreduce, tree (binomial) allreduce and pipeline-parallel
//! activation bursts alongside [`crate::AllToAll`], all driven through
//! one trait so the simulator embedding is written once.
//!
//! A collective is a sequence of **rounds** separated by an OFF
//! (compute) period. A round is one or more **waves**: a set of flows
//! released together behind a barrier — the next wave starts only when
//! every flow of the current wave has completed. Alltoall is a single
//! wave of `n·(n−1)` flows; ring allreduce is `2(n−1)` waves of `n`
//! chunk flows; tree allreduce is `2·⌈log₂n⌉` waves tracing the
//! binomial tree up then down; a pipeline burst is one wave of
//! neighbor flows per microbatch.
//!
//! The embedding contract mirrors [`crate::AllToAll`]: call
//! [`Collective::start_round`] to get the first wave, feed every
//! completion to [`Collective::on_flow_done`], and act on the returned
//! [`Progress`] (admit the next wave, or schedule the next round).
//! All methods return typed [`CollectiveError`]s instead of panicking —
//! hunt-generated genomes can drive these machines into states a
//! hand-written harness never would.

use crate::{FlowRequest, HostId, Nanos};

/// Misuse of a collective round machine, reported instead of panicking
/// so fuzzed/hunted drivers can observe the failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveError {
    /// `start_round` while a round is still draining.
    RoundInFlight,
    /// `on_flow_done` with no round in flight.
    NoRoundInFlight,
    /// `start_round` after all configured rounds completed.
    Finished,
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RoundInFlight => write!(f, "previous round still in flight"),
            Self::NoRoundInFlight => write!(f, "no round in flight"),
            Self::Finished => write!(f, "workload already finished"),
        }
    }
}

impl std::error::Error for CollectiveError {}

/// What one completion did to the round state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Progress {
    /// The current wave still has flows in flight.
    Pending,
    /// The wave drained and the round continues: admit these flows now
    /// (the barrier release — all of them start together).
    NextWave(Vec<FlowRequest>),
    /// The round drained. `next_round` is when to call `start_round`
    /// again (`now + off_time`), or `None` when all rounds are done.
    RoundDone {
        /// Start time of the next round, if any remain.
        next_round: Option<Nanos>,
    },
}

/// A synchronized collective as a round state machine. The driver owns
/// the clock and the network; the machine owns membership, wave
/// sequencing and per-round accounting.
pub trait Collective {
    /// Short name for tables and JSON rows (e.g. `"ring_allreduce"`).
    fn name(&self) -> &'static str;

    /// Participating workers (simulator host ids).
    fn workers(&self) -> &[HostId];

    /// Whether a round is currently in flight.
    fn round_active(&self) -> bool;

    /// Whether all configured rounds have completed.
    fn finished(&self) -> bool;

    /// Rounds fully completed so far.
    fn rounds_done(&self) -> u32;

    /// Wall-clock duration of each completed round (the collective FCT).
    fn round_durations(&self) -> &[Nanos];

    /// Total bytes the network carries per round (all waves).
    fn bytes_per_round(&self) -> u64;

    /// Per-rank payload bytes per round — the numerator of NCCL-style
    /// algorithm bandwidth (`algbw = payload / round time`).
    fn per_rank_bytes(&self) -> u64;

    /// Begin a round at `now`; returns the first wave's flows.
    fn start_round(&mut self, now: Nanos) -> Result<Vec<FlowRequest>, CollectiveError>;

    /// Record one flow completion at `now`.
    fn on_flow_done(&mut self, now: Nanos) -> Result<Progress, CollectiveError>;

    /// NCCL-style algorithm bandwidth of finished round `idx`, bytes/sec.
    fn algbw_bytes_per_sec(&self, idx: usize) -> Option<f64> {
        let d = *self.round_durations().get(idx)?;
        if d == 0 {
            return None;
        }
        Some(self.per_rank_bytes() as f64 / (d as f64 / 1e9))
    }
}

/// Shared round bookkeeping: outstanding-wave counting, round
/// durations, bounded-round termination and the OFF gap. Recording the
/// duration happens *before* the finished check, so the final round of
/// a bounded run is always accounted.
#[derive(Debug, Clone)]
struct RoundCore {
    rounds: Option<u32>,
    off_time: Nanos,
    outstanding: usize,
    rounds_done: u32,
    round_start: Option<Nanos>,
    round_durations: Vec<Nanos>,
}

impl RoundCore {
    fn new(rounds: Option<u32>, off_time: Nanos) -> Self {
        Self {
            rounds,
            off_time,
            outstanding: 0,
            rounds_done: 0,
            round_start: None,
            round_durations: Vec::new(),
        }
    }

    fn round_active(&self) -> bool {
        self.outstanding > 0
    }

    fn finished(&self) -> bool {
        match self.rounds {
            Some(r) => self.rounds_done >= r && !self.round_active(),
            None => false,
        }
    }

    fn begin(&mut self, now: Nanos, wave_len: usize) -> Result<(), CollectiveError> {
        if self.round_active() {
            return Err(CollectiveError::RoundInFlight);
        }
        if self.finished() {
            return Err(CollectiveError::Finished);
        }
        self.outstanding = wave_len;
        self.round_start = Some(now);
        Ok(())
    }

    /// One completion; `Ok(true)` when the current wave just drained.
    fn flow_done(&mut self) -> Result<bool, CollectiveError> {
        if self.outstanding == 0 {
            return Err(CollectiveError::NoRoundInFlight);
        }
        self.outstanding -= 1;
        Ok(self.outstanding == 0)
    }

    fn next_wave(&mut self, wave_len: usize) {
        debug_assert_eq!(self.outstanding, 0);
        self.outstanding = wave_len;
    }

    /// Close the round at `now`: account its duration, then decide
    /// whether another round follows.
    fn finish_round(&mut self, now: Nanos) -> Progress {
        self.rounds_done += 1;
        if let Some(start) = self.round_start.take() {
            self.round_durations.push(now.saturating_sub(start));
        }
        let next_round = if self.finished() {
            None
        } else {
            Some(now + self.off_time)
        };
        Progress::RoundDone { next_round }
    }
}

// ---------------------------------------------------------------------------
// Ring allreduce
// ---------------------------------------------------------------------------

/// Configuration of a ring-allreduce collective.
#[derive(Debug, Clone)]
pub struct RingConfig {
    /// Participating workers in ring order.
    pub workers: Vec<HostId>,
    /// Per-rank payload bytes (the tensor being reduced).
    pub message_bytes: u64,
    /// OFF (compute) period between rounds, ns.
    pub off_time: Nanos,
    /// Number of rounds; `None` = unbounded.
    pub rounds: Option<u32>,
}

/// Ring allreduce: `2(n−1)` barrier-separated steps, each a wave of
/// `n` simultaneous neighbor transfers of one `message/n` chunk —
/// `n−1` reduce-scatter steps followed by `n−1` allgather steps. The
/// traffic pattern (who talks to whom, how much, when) is identical in
/// both phases, so the machine models them as `2(n−1)` equal waves.
#[derive(Debug, Clone)]
pub struct RingAllreduce {
    cfg: RingConfig,
    core: RoundCore,
    /// Wave index within the current round, `0..2(n−1)`.
    step: usize,
}

impl RingAllreduce {
    /// Create the machine. Panics on fewer than two workers or an empty
    /// message (static configuration errors, not runtime states).
    pub fn new(cfg: RingConfig) -> Self {
        assert!(cfg.workers.len() >= 2, "ring allreduce needs >= 2 workers");
        assert!(cfg.message_bytes > 0);
        let core = RoundCore::new(cfg.rounds, cfg.off_time);
        Self { cfg, core, step: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    fn steps_per_round(&self) -> usize {
        2 * (self.cfg.workers.len() - 1)
    }

    /// Chunk size per step: the message split `n` ways, rounded up.
    pub fn chunk_bytes(&self) -> u64 {
        let n = self.cfg.workers.len() as u64;
        self.cfg.message_bytes.div_ceil(n).max(1)
    }

    /// One wave: every worker sends its current chunk to its ring
    /// successor.
    fn wave(&self, now: Nanos) -> Vec<FlowRequest> {
        let n = self.cfg.workers.len();
        let chunk = self.chunk_bytes();
        (0..n)
            .map(|i| FlowRequest {
                src: self.cfg.workers[i],
                dst: self.cfg.workers[(i + 1) % n],
                bytes: chunk,
                start: now,
            })
            .collect()
    }
}

impl Collective for RingAllreduce {
    fn name(&self) -> &'static str {
        "ring_allreduce"
    }

    fn workers(&self) -> &[HostId] {
        &self.cfg.workers
    }

    fn round_active(&self) -> bool {
        self.core.round_active()
    }

    fn finished(&self) -> bool {
        self.core.finished()
    }

    fn rounds_done(&self) -> u32 {
        self.core.rounds_done
    }

    fn round_durations(&self) -> &[Nanos] {
        &self.core.round_durations
    }

    fn bytes_per_round(&self) -> u64 {
        let n = self.cfg.workers.len() as u64;
        self.steps_per_round() as u64 * n * self.chunk_bytes()
    }

    fn per_rank_bytes(&self) -> u64 {
        self.cfg.message_bytes
    }

    fn start_round(&mut self, now: Nanos) -> Result<Vec<FlowRequest>, CollectiveError> {
        let flows = self.wave(now);
        self.core.begin(now, flows.len())?;
        self.step = 0;
        Ok(flows)
    }

    fn on_flow_done(&mut self, now: Nanos) -> Result<Progress, CollectiveError> {
        if !self.core.flow_done()? {
            return Ok(Progress::Pending);
        }
        self.step += 1;
        if self.step < self.steps_per_round() {
            let flows = self.wave(now);
            self.core.next_wave(flows.len());
            Ok(Progress::NextWave(flows))
        } else {
            Ok(self.core.finish_round(now))
        }
    }
}

// ---------------------------------------------------------------------------
// Tree (binomial) allreduce
// ---------------------------------------------------------------------------

/// Configuration of a tree-allreduce collective.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Participating workers; index 0 is the tree root.
    pub workers: Vec<HostId>,
    /// Per-rank payload bytes.
    pub message_bytes: u64,
    /// OFF (compute) period between rounds, ns.
    pub off_time: Nanos,
    /// Number of rounds; `None` = unbounded.
    pub rounds: Option<u32>,
}

/// Binomial-tree allreduce: `⌈log₂n⌉` reduce waves toward rank 0
/// (level `k` pairs rank `i` with `i − 2ᵏ` for every `i ≡ 2ᵏ mod
/// 2ᵏ⁺¹`), then the mirror-image broadcast waves back down. Each edge
/// carries the full message, so the wire traffic concentrates toward
/// the root — the opposite stress pattern from the ring's uniform
/// neighbor load.
#[derive(Debug, Clone)]
pub struct TreeAllreduce {
    cfg: TreeConfig,
    core: RoundCore,
    levels: usize,
    /// Wave index within the current round, `0..2·levels`.
    step: usize,
}

impl TreeAllreduce {
    /// Create the machine. Panics on fewer than two workers or an empty
    /// message.
    pub fn new(cfg: TreeConfig) -> Self {
        assert!(cfg.workers.len() >= 2, "tree allreduce needs >= 2 workers");
        assert!(cfg.message_bytes > 0);
        let levels = usize::BITS as usize - (cfg.workers.len() - 1).leading_zeros() as usize;
        let core = RoundCore::new(cfg.rounds, cfg.off_time);
        Self {
            cfg,
            core,
            levels,
            step: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TreeConfig {
        &self.cfg
    }

    fn steps_per_round(&self) -> usize {
        2 * self.levels
    }

    /// Wave `idx`: reduce level `idx` going up, then broadcast levels
    /// mirrored going down.
    fn wave(&self, idx: usize, now: Nanos) -> Vec<FlowRequest> {
        let n = self.cfg.workers.len();
        let (k, reduce) = if idx < self.levels {
            (idx, true)
        } else {
            (2 * self.levels - 1 - idx, false)
        };
        let stride = 1usize << (k + 1);
        let mut flows = Vec::new();
        let mut i = 1usize << k;
        while i < n {
            let (child, parent) = (i, i - (1 << k));
            let (src, dst) = if reduce {
                (child, parent)
            } else {
                (parent, child)
            };
            flows.push(FlowRequest {
                src: self.cfg.workers[src],
                dst: self.cfg.workers[dst],
                bytes: self.cfg.message_bytes,
                start: now,
            });
            i += stride;
        }
        flows
    }
}

impl Collective for TreeAllreduce {
    fn name(&self) -> &'static str {
        "tree_allreduce"
    }

    fn workers(&self) -> &[HostId] {
        &self.cfg.workers
    }

    fn round_active(&self) -> bool {
        self.core.round_active()
    }

    fn finished(&self) -> bool {
        self.core.finished()
    }

    fn rounds_done(&self) -> u32 {
        self.core.rounds_done
    }

    fn round_durations(&self) -> &[Nanos] {
        &self.core.round_durations
    }

    fn bytes_per_round(&self) -> u64 {
        // A binomial tree over n ranks has n−1 edges, traversed once up
        // and once down, each carrying the full message.
        2 * (self.cfg.workers.len() as u64 - 1) * self.cfg.message_bytes
    }

    fn per_rank_bytes(&self) -> u64 {
        self.cfg.message_bytes
    }

    fn start_round(&mut self, now: Nanos) -> Result<Vec<FlowRequest>, CollectiveError> {
        let flows = self.wave(0, now);
        self.core.begin(now, flows.len())?;
        self.step = 0;
        Ok(flows)
    }

    fn on_flow_done(&mut self, now: Nanos) -> Result<Progress, CollectiveError> {
        if !self.core.flow_done()? {
            return Ok(Progress::Pending);
        }
        self.step += 1;
        if self.step < self.steps_per_round() {
            let flows = self.wave(self.step, now);
            self.core.next_wave(flows.len());
            Ok(Progress::NextWave(flows))
        } else {
            Ok(self.core.finish_round(now))
        }
    }
}

// ---------------------------------------------------------------------------
// Pipeline-parallel activation bursts
// ---------------------------------------------------------------------------

/// Configuration of a pipeline-parallel burst collective.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Pipeline stages in order; stage `i` feeds stage `i+1`.
    pub workers: Vec<HostId>,
    /// Activation bytes per microbatch per stage boundary.
    pub microbatch_bytes: u64,
    /// Microbatches per round (one wave each).
    pub microbatches: u32,
    /// OFF (compute) period between rounds, ns.
    pub off_time: Nanos,
    /// Number of rounds; `None` = unbounded.
    pub rounds: Option<u32>,
}

/// Pipeline-parallel bursts: each microbatch releases a wave of `n−1`
/// neighbor flows (stage `i` → `i+1`, all boundaries at once — the
/// steady-state pipeline where every stage forwards simultaneously),
/// with a barrier between microbatches. Unlike the allreduces, traffic
/// is strictly chain-shaped: each link between adjacent stages carries
/// the whole activation, nothing crosses the chain.
#[derive(Debug, Clone)]
pub struct PipelineBurst {
    cfg: PipelineConfig,
    core: RoundCore,
    /// Microbatch index within the current round.
    step: u32,
}

impl PipelineBurst {
    /// Create the machine. Panics on fewer than two stages, an empty
    /// microbatch, or zero microbatches.
    pub fn new(cfg: PipelineConfig) -> Self {
        assert!(cfg.workers.len() >= 2, "pipeline needs >= 2 stages");
        assert!(cfg.microbatch_bytes > 0);
        assert!(cfg.microbatches >= 1);
        let core = RoundCore::new(cfg.rounds, cfg.off_time);
        Self { cfg, core, step: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    fn wave(&self, now: Nanos) -> Vec<FlowRequest> {
        self.cfg
            .workers
            .windows(2)
            .map(|w| FlowRequest {
                src: w[0],
                dst: w[1],
                bytes: self.cfg.microbatch_bytes,
                start: now,
            })
            .collect()
    }
}

impl Collective for PipelineBurst {
    fn name(&self) -> &'static str {
        "pipeline_burst"
    }

    fn workers(&self) -> &[HostId] {
        &self.cfg.workers
    }

    fn round_active(&self) -> bool {
        self.core.round_active()
    }

    fn finished(&self) -> bool {
        self.core.finished()
    }

    fn rounds_done(&self) -> u32 {
        self.core.rounds_done
    }

    fn round_durations(&self) -> &[Nanos] {
        &self.core.round_durations
    }

    fn bytes_per_round(&self) -> u64 {
        (self.cfg.workers.len() as u64 - 1)
            * self.cfg.microbatch_bytes
            * u64::from(self.cfg.microbatches)
    }

    fn per_rank_bytes(&self) -> u64 {
        // Bytes one stage boundary carries per round.
        self.cfg.microbatch_bytes * u64::from(self.cfg.microbatches)
    }

    fn start_round(&mut self, now: Nanos) -> Result<Vec<FlowRequest>, CollectiveError> {
        let flows = self.wave(now);
        self.core.begin(now, flows.len())?;
        self.step = 0;
        Ok(flows)
    }

    fn on_flow_done(&mut self, now: Nanos) -> Result<Progress, CollectiveError> {
        if !self.core.flow_done()? {
            return Ok(Progress::Pending);
        }
        self.step += 1;
        if self.step < self.cfg.microbatches {
            let flows = self.wave(now);
            self.core.next_wave(flows.len());
            Ok(Progress::NextWave(flows))
        } else {
            Ok(self.core.finish_round(now))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a whole round synchronously: start it, complete every
    /// flow of every wave at `t += 10`, return the wave sizes.
    fn drive_round(c: &mut dyn Collective, start: Nanos) -> Vec<usize> {
        let mut waves = vec![c.start_round(start).unwrap().len()];
        let mut t = start;
        let mut pending = *waves.last().unwrap();
        loop {
            t += 10;
            pending -= 1;
            match c.on_flow_done(t).unwrap() {
                Progress::Pending => assert!(pending > 0),
                Progress::NextWave(flows) => {
                    assert_eq!(pending, 0, "barrier released early");
                    waves.push(flows.len());
                    pending = flows.len();
                }
                Progress::RoundDone { .. } => {
                    assert_eq!(pending, 0, "round ended with flows in flight");
                    return waves;
                }
            }
        }
    }

    #[test]
    fn ring_runs_2n_minus_2_uniform_waves() {
        let mut ring = RingAllreduce::new(RingConfig {
            workers: (0..4).collect(),
            message_bytes: 4 << 20,
            off_time: 1000,
            rounds: Some(1),
        });
        let waves = drive_round(&mut ring, 0);
        assert_eq!(waves, vec![4; 6]); // 2(n−1) = 6 waves of n = 4 flows
        assert!(ring.finished());
        assert_eq!(ring.round_durations().len(), 1);
        assert_eq!(ring.chunk_bytes(), 1 << 20);
        assert_eq!(ring.bytes_per_round(), 6 * 4 * (1 << 20));
    }

    #[test]
    fn ring_wave_is_successor_ring() {
        let mut ring = RingAllreduce::new(RingConfig {
            workers: vec![3, 5, 7],
            message_bytes: 3000,
            off_time: 0,
            rounds: None,
        });
        let flows = ring.start_round(0).unwrap();
        let pairs: Vec<_> = flows.iter().map(|f| (f.src, f.dst)).collect();
        assert_eq!(pairs, vec![(3, 5), (5, 7), (7, 3)]);
        assert!(flows.iter().all(|f| f.bytes == 1000));
    }

    #[test]
    fn tree_waves_trace_binomial_up_then_down() {
        let mut tree = TreeAllreduce::new(TreeConfig {
            workers: (0..5).collect(),
            message_bytes: 1 << 20,
            off_time: 1000,
            rounds: Some(1),
        });
        // n = 5 → 3 levels. Reduce: {1→0, 3→2}, {2→0}, {4→0};
        // broadcast mirrors in reverse.
        let first = tree.start_round(0).unwrap();
        let pairs: Vec<_> = first.iter().map(|f| (f.src, f.dst)).collect();
        assert_eq!(pairs, vec![(1, 0), (3, 2)]);
        let waves = {
            // Finish the round from here on.
            let mut waves = vec![first.len()];
            let mut pending = first.len();
            let mut t = 0;
            loop {
                t += 10;
                pending -= 1;
                match tree.on_flow_done(t).unwrap() {
                    Progress::Pending => {}
                    Progress::NextWave(flows) => {
                        waves.push(flows.len());
                        pending = flows.len();
                    }
                    Progress::RoundDone { next_round } => {
                        assert_eq!(next_round, None);
                        break;
                    }
                }
            }
            waves
        };
        assert_eq!(waves, vec![2, 1, 1, 1, 1, 2]);
        // Total edges each direction: n−1 = 4.
        assert_eq!(waves.iter().sum::<usize>(), 8);
        assert_eq!(tree.bytes_per_round(), 8 * (1 << 20));
        assert!(tree.finished());
    }

    #[test]
    fn tree_power_of_two_is_log_deep() {
        let mut tree = TreeAllreduce::new(TreeConfig {
            workers: (0..8).collect(),
            message_bytes: 1000,
            off_time: 0,
            rounds: Some(1),
        });
        let waves = drive_round(&mut tree, 0);
        assert_eq!(waves, vec![4, 2, 1, 1, 2, 4]);
    }

    #[test]
    fn pipeline_runs_one_wave_per_microbatch() {
        let mut pipe = PipelineBurst::new(PipelineConfig {
            workers: (0..4).collect(),
            microbatch_bytes: 1 << 20,
            microbatches: 3,
            off_time: 1000,
            rounds: Some(2),
        });
        let waves = drive_round(&mut pipe, 0);
        assert_eq!(waves, vec![3; 3]); // 3 microbatches × (n−1) flows
        assert!(!pipe.finished());
        assert_eq!(pipe.rounds_done(), 1);
        let flows = pipe.start_round(10_000).unwrap();
        let pairs: Vec<_> = flows.iter().map(|f| (f.src, f.dst)).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn off_gap_and_bounded_rounds() {
        let mut ring = RingAllreduce::new(RingConfig {
            workers: (0..2).collect(),
            message_bytes: 100,
            off_time: 5_000,
            rounds: Some(2),
        });
        // Round 1: 2 waves of 2 flows.
        ring.start_round(0).unwrap();
        let mut last = Progress::Pending;
        for t in [10, 20, 30, 40] {
            last = ring.on_flow_done(t).unwrap();
        }
        assert_eq!(
            last,
            Progress::RoundDone {
                next_round: Some(40 + 5_000)
            }
        );
        // Round 2 drains → no next round, duration still recorded.
        ring.start_round(5_040).unwrap();
        for t in [5_050, 5_060, 5_070, 5_080] {
            last = ring.on_flow_done(t).unwrap();
        }
        assert_eq!(last, Progress::RoundDone { next_round: None });
        assert!(ring.finished());
        assert_eq!(ring.round_durations(), &[40, 40]);
    }

    #[test]
    fn typed_errors_instead_of_panics() {
        let mut ring = RingAllreduce::new(RingConfig {
            workers: (0..2).collect(),
            message_bytes: 100,
            off_time: 0,
            rounds: Some(1),
        });
        assert_eq!(ring.on_flow_done(0), Err(CollectiveError::NoRoundInFlight));
        ring.start_round(0).unwrap();
        assert_eq!(ring.start_round(1), Err(CollectiveError::RoundInFlight));
        for t in [10, 20, 30, 40] {
            ring.on_flow_done(t).unwrap();
        }
        assert_eq!(ring.start_round(50), Err(CollectiveError::Finished));
        assert_eq!(ring.on_flow_done(50), Err(CollectiveError::NoRoundInFlight));
    }

    #[test]
    fn algbw_uses_per_rank_payload() {
        let mut ring = RingAllreduce::new(RingConfig {
            workers: (0..4).collect(),
            message_bytes: 4 << 20,
            off_time: 0,
            rounds: Some(1),
        });
        ring.start_round(0).unwrap();
        let mut done = false;
        let mut t = 0;
        while !done {
            t += 10;
            done = matches!(ring.on_flow_done(t).unwrap(), Progress::RoundDone { .. });
        }
        let d = ring.round_durations()[0];
        let algbw = ring.algbw_bytes_per_sec(0).unwrap();
        let expect = (4 << 20) as f64 / (d as f64 / 1e9);
        assert!((algbw - expect).abs() / expect < 1e-12);
    }
}
