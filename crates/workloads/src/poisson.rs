//! Open-loop Poisson flow arrivals at a target network load.
//!
//! FB_Hadoop and SolarRPC traffic are generated the way datacenter
//! transport papers do: flow sizes drawn i.i.d. from a published CDF,
//! arrival times from a Poisson process whose rate is chosen so the
//! offered load equals a fraction of the hosts' aggregate access
//! bandwidth, and (src, dst) pairs uniform over distinct hosts.

use rand::Rng;

use crate::fsize::FlowSizeDist;
use crate::{FlowRequest, HostId, Nanos};

/// Configuration for a Poisson workload.
#[derive(Debug, Clone)]
pub struct PoissonConfig {
    /// Number of participating hosts (ids `0..hosts`).
    pub hosts: usize,
    /// Access-link bandwidth per host, bytes/sec.
    pub host_bw_bytes_per_sec: f64,
    /// Target offered load as a fraction of aggregate access bandwidth
    /// (the paper's default FB_Hadoop load is 0.30).
    pub load: f64,
    /// When the process starts.
    pub start: Nanos,
    /// When the process stops generating new flows.
    pub end: Nanos,
}

/// A Poisson arrival process over a flow-size distribution.
#[derive(Debug, Clone)]
pub struct PoissonWorkload {
    cfg: PoissonConfig,
    dist: FlowSizeDist,
    /// Flow inter-arrival mean in nanoseconds.
    mean_gap_ns: f64,
}

impl PoissonWorkload {
    /// Build a workload; computes the arrival rate from the target load
    /// and the distribution's mean flow size.
    pub fn new(cfg: PoissonConfig, dist: FlowSizeDist) -> Self {
        assert!(cfg.hosts >= 2, "need at least two hosts");
        assert!(cfg.load > 0.0 && cfg.load <= 1.5, "load out of range");
        assert!(cfg.host_bw_bytes_per_sec > 0.0);
        let aggregate_bps = cfg.hosts as f64 * cfg.host_bw_bytes_per_sec;
        let target_bytes_per_sec = cfg.load * aggregate_bps;
        let flows_per_sec = target_bytes_per_sec / dist.mean_bytes();
        let mean_gap_ns = 1e9 / flows_per_sec;
        Self {
            cfg,
            dist,
            mean_gap_ns,
        }
    }

    /// Mean inter-arrival gap in nanoseconds (diagnostics).
    pub fn mean_gap_ns(&self) -> f64 {
        self.mean_gap_ns
    }

    /// The flow-size distribution in use.
    pub fn dist(&self) -> &FlowSizeDist {
        &self.dist
    }

    /// Generate the full arrival schedule for `[start, end)`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<FlowRequest> {
        let mut out = Vec::new();
        let mut t = self.cfg.start as f64;
        loop {
            // Exponential inter-arrival via inverse transform.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -self.mean_gap_ns * u.ln();
            if t >= self.cfg.end as f64 {
                break;
            }
            let src: HostId = rng.gen_range(0..self.cfg.hosts);
            let mut dst: HostId = rng.gen_range(0..self.cfg.hosts - 1);
            if dst >= src {
                dst += 1;
            }
            out.push(FlowRequest {
                src,
                dst,
                bytes: self.dist.sample(rng),
                start: t as Nanos,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(load: f64) -> PoissonWorkload {
        PoissonWorkload::new(
            PoissonConfig {
                hosts: 16,
                host_bw_bytes_per_sec: 12.5e9, // 100 Gbps
                load,
                start: 0,
                end: 20_000_000, // 20 ms
            },
            FlowSizeDist::fb_hadoop(),
        )
    }

    #[test]
    fn offered_load_matches_target() {
        let w = workload(0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let flows = w.generate(&mut rng);
        let bytes: u64 = flows.iter().map(|f| f.bytes).sum();
        let duration_s = 0.02;
        let offered = bytes as f64 / duration_s;
        let target = 0.3 * 16.0 * 12.5e9;
        // Heavy-tailed sizes make the sample mean noisy; 40% tolerance.
        assert!(
            (offered / target - 1.0).abs() < 0.4,
            "offered {offered:.3e} vs target {target:.3e}"
        );
    }

    #[test]
    fn arrivals_sorted_and_in_range() {
        let w = workload(0.3);
        let mut rng = StdRng::seed_from_u64(2);
        let flows = w.generate(&mut rng);
        assert!(!flows.is_empty());
        for w2 in flows.windows(2) {
            assert!(w2[0].start <= w2[1].start);
        }
        for f in &flows {
            assert!(f.start < 20_000_000);
            assert_ne!(f.src, f.dst);
            assert!(f.src < 16 && f.dst < 16);
        }
    }

    #[test]
    fn higher_load_means_more_flows() {
        let mut rng = StdRng::seed_from_u64(3);
        let lo = workload(0.1).generate(&mut rng).len();
        let mut rng = StdRng::seed_from_u64(3);
        let hi = workload(0.8).generate(&mut rng).len();
        assert!(hi > 3 * lo, "lo={lo} hi={hi}");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let w = workload(0.3);
        let a = w.generate(&mut StdRng::seed_from_u64(9));
        let b = w.generate(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn dst_never_equals_src_even_under_stress() {
        let w = PoissonWorkload::new(
            PoissonConfig {
                hosts: 2,
                host_bw_bytes_per_sec: 12.5e9,
                load: 0.5,
                start: 0,
                end: 5_000_000,
            },
            FlowSizeDist::solar_rpc(),
        );
        let mut rng = StdRng::seed_from_u64(5);
        for f in w.generate(&mut rng) {
            assert_ne!(f.src, f.dst);
        }
    }
}
