//! Flow-size distributions encoded as piecewise log-linear CDFs.
//!
//! Production traces are proprietary; the curves below reproduce the
//! published CDF plots the paper's workloads cite. Sampling is inverse-
//! transform with log-linear interpolation between control points, which
//! preserves the heavy-tail structure that matters for DCQCN tuning (the
//! mice-count vs. elephant-bytes split).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A flow-size distribution: control points of `(size_bytes, cdf)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowSizeDist {
    name: String,
    /// Monotonic `(size, cdf)` points, first cdf 0.0, last cdf 1.0.
    points: Vec<(f64, f64)>,
}

impl FlowSizeDist {
    /// Build a distribution from explicit CDF points. Panics if the points
    /// are not strictly monotonic in both coordinates or don't span
    /// `[0, 1]`.
    pub fn from_points(name: &str, points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        assert_eq!(points[0].1, 0.0, "first CDF value must be 0");
        assert_eq!(points[points.len() - 1].1, 1.0, "last CDF value must be 1");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must increase");
            assert!(w[0].1 <= w[1].1, "CDF must be non-decreasing");
        }
        assert!(points[0].0 > 0.0, "sizes must be positive for log interp");
        Self {
            name: name.to_string(),
            points: points.to_vec(),
        }
    }

    /// The FB_Hadoop distribution (Roy et al., SIGCOMM 2015, Hadoop
    /// cluster): ~70% of flows under 100 KB, but flows ≥ 1 MB carry the
    /// bulk of the bytes. Approximates the published CDF plot.
    pub fn fb_hadoop() -> Self {
        Self::from_points(
            "FB_Hadoop",
            &[
                (100.0, 0.0),
                (1_000.0, 0.30),
                (10_000.0, 0.50),
                (100_000.0, 0.70),
                (1_000_000.0, 0.90),
                (10_000_000.0, 0.97),
                (100_000_000.0, 1.0),
            ],
        )
    }

    /// The SolarRPC distribution (Miao et al., SIGCOMM 2022): storage RPCs,
    /// all mice below 128 KB.
    pub fn solar_rpc() -> Self {
        Self::from_points(
            "SolarRPC",
            &[
                (512.0, 0.0),
                (4_096.0, 0.35),
                (16_384.0, 0.70),
                (65_536.0, 0.95),
                (131_072.0, 1.0),
            ],
        )
    }

    /// A degenerate single-size distribution (useful in tests and for
    /// fixed-size alltoall messages). Every sample is exactly `bytes`:
    /// the CDF is a vertical step at `bytes`, not a `(bytes−1, bytes)`
    /// ramp — the old ramp could round down to `bytes−1` under
    /// log-interpolation and silently bumped `fixed(1)` to 2 bytes.
    pub fn fixed(bytes: u64) -> Self {
        let b = bytes.max(1) as f64;
        // Built directly: `from_points` (rightly) rejects non-increasing
        // sizes, but a zero-width step is exactly what "fixed" means.
        Self {
            name: "fixed".to_string(),
            points: vec![(b, 0.0), (b, 1.0)],
        }
    }

    /// Distribution name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inverse-CDF sample: flow size in bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        self.quantile(u)
    }

    /// The size at CDF value `u ∈ [0, 1]`, log-linear between points.
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        let pts = &self.points;
        let mut i = 1;
        while i < pts.len() - 1 && pts[i].1 < u {
            i += 1;
        }
        let (s0, c0) = pts[i - 1];
        let (s1, c1) = pts[i];
        if s0 == s1 {
            // Degenerate (vertical) segment, e.g. `fixed`: the size is
            // exact by construction; skip the ln/exp round trip, which
            // can be off by one ULP and round to the wrong integer.
            return (s0 as u64).max(1);
        }
        let frac = if c1 > c0 { (u - c0) / (c1 - c0) } else { 1.0 };
        let frac = frac.clamp(0.0, 1.0);
        let ls = s0.ln() + frac * (s1.ln() - s0.ln());
        ls.exp().round().max(1.0) as u64
    }

    /// Mean flow size in bytes (numerical integral of the quantile
    /// function; used to convert target load to Poisson arrival rate).
    pub fn mean_bytes(&self) -> f64 {
        const STEPS: usize = 10_000;
        let mut acc = 0.0;
        for k in 0..STEPS {
            let u = (k as f64 + 0.5) / STEPS as f64;
            acc += self.quantile(u) as f64;
        }
        acc / STEPS as f64
    }

    /// Fraction of *flows* at or below `bytes` (the CDF itself).
    pub fn cdf(&self, bytes: f64) -> f64 {
        let pts = &self.points;
        // Upper bound first so a vertical step (`fixed`) reports
        // `P(X <= bytes) = 1` at the step itself.
        if bytes >= pts[pts.len() - 1].0 {
            return 1.0;
        }
        if bytes <= pts[0].0 {
            return 0.0;
        }
        let mut i = 1;
        while pts[i].0 < bytes {
            i += 1;
        }
        let (s0, c0) = pts[i - 1];
        let (s1, c1) = pts[i];
        let frac = (bytes.ln() - s0.ln()) / (s1.ln() - s0.ln());
        c0 + frac * (c1 - c0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantile_endpoints_match_control_points() {
        let d = FlowSizeDist::fb_hadoop();
        assert_eq!(d.quantile(0.0), 100);
        assert_eq!(d.quantile(1.0), 100_000_000);
    }

    #[test]
    fn quantile_is_monotonic() {
        let d = FlowSizeDist::fb_hadoop();
        let mut last = 0;
        for k in 0..=100 {
            let q = d.quantile(k as f64 / 100.0);
            assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn cdf_inverts_quantile() {
        let d = FlowSizeDist::fb_hadoop();
        for u in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let s = d.quantile(u) as f64;
            assert!((d.cdf(s) - u).abs() < 0.02, "u={u} s={s} cdf={}", d.cdf(s));
        }
    }

    #[test]
    fn fb_hadoop_is_mice_by_count_elephant_by_bytes() {
        let d = FlowSizeDist::fb_hadoop();
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<u64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let mice = samples.iter().filter(|&&s| s < 1 << 20).count();
        let total_bytes: u64 = samples.iter().sum();
        let elephant_bytes: u64 = samples.iter().filter(|&&s| s >= 1 << 20).sum();
        // "most flows are mice but most traffic is contributed by
        // elephant flows" (§IV-B, Workloads).
        assert!(mice as f64 > 0.8 * samples.len() as f64);
        assert!(elephant_bytes as f64 > 0.5 * total_bytes as f64);
    }

    #[test]
    fn solar_rpc_is_all_mice() {
        let d = FlowSizeDist::solar_rpc();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) <= 131_072);
        }
    }

    /// `fixed(b)` must sample *exactly* `b` — never `b−1` (the old
    /// ramp CDF could round down) and never a silent bump of
    /// `fixed(1)` to 2 bytes.
    #[test]
    fn fixed_distribution_returns_exactly_bytes() {
        for bytes in [1u64, 2, 12 << 20] {
            let d = FlowSizeDist::fixed(bytes);
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..200 {
                assert_eq!(d.sample(&mut rng), bytes, "fixed({bytes})");
            }
            // The quantile is the constant over the whole unit interval.
            for u in [0.0, 1e-9, 0.25, 0.5, 0.999_999, 1.0] {
                assert_eq!(d.quantile(u), bytes, "fixed({bytes}) at u={u}");
            }
            assert_eq!(d.cdf(bytes as f64), 1.0);
            assert_eq!(d.cdf(bytes as f64 - 0.5), 0.0);
        }
    }

    #[test]
    fn fixed_mean_is_exact() {
        let d = FlowSizeDist::fixed(12 << 20);
        assert!((d.mean_bytes() - (12u64 << 20) as f64).abs() < 1e-6);
    }

    #[test]
    fn mean_bytes_is_plausible() {
        let d = FlowSizeDist::fb_hadoop();
        let mean = d.mean_bytes();
        // Heavy tail: mean far above the median (~10 KB), far below max.
        assert!(mean > 100_000.0 && mean < 20_000_000.0, "mean = {mean}");
    }

    #[test]
    fn sampling_matches_cdf_statistically() {
        let d = FlowSizeDist::solar_rpc();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let below_16k = (0..n).filter(|_| d.sample(&mut rng) <= 16_384).count() as f64 / n as f64;
        assert!((below_16k - 0.70).abs() < 0.03, "got {below_16k}");
    }

    #[test]
    #[should_panic(expected = "first CDF value")]
    fn rejects_bad_first_point() {
        FlowSizeDist::from_points("bad", &[(1.0, 0.5), (2.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "sizes must increase")]
    fn rejects_non_monotonic_sizes() {
        FlowSizeDist::from_points("bad", &[(10.0, 0.0), (5.0, 1.0)]);
    }
}
