//! Workload generators for the PARALEON evaluation.
//!
//! The paper evaluates on four traffic patterns, all reproduced here:
//!
//! * **FB_Hadoop** — the Facebook Hadoop-cluster distribution (Roy et al.,
//!   SIGCOMM 2015): most *flows* are mice, most *bytes* belong to
//!   elephants. Generated as an open-loop Poisson process at a target
//!   load ([`poisson::PoissonWorkload`] over
//!   [`fsize::FlowSizeDist::fb_hadoop`]).
//! * **LLM training alltoall** — an ON-OFF pattern (Janus, SIGCOMM 2023):
//!   during ON, every worker sends an equal-size message to every other
//!   worker; when the collective finishes, all workers compute for an OFF
//!   period, then repeat ([`alltoall::AllToAll`]).
//! * **SolarRPC** — the Alibaba storage-RPC distribution (SIGCOMM 2022),
//!   entirely mice below 128 KB ([`fsize::FlowSizeDist::solar_rpc`]).
//! * **NCCL-Tests-style alltoall sweeps** — single synchronized alltoall
//!   rounds of configurable message size, used by Table II and Fig. 13.
//!
//! Beyond the paper, [`collective`] generalizes the alltoall round
//! machine into a [`Collective`] trait and adds the other collectives
//! NCCL schedules — ring allreduce, binomial-tree allreduce and
//! pipeline-parallel activation bursts — so the harness can ask whether
//! PARALEON's tuning guidance survives barrier-synchronized traffic
//! that is *not* a full mesh (ROADMAP item 2).
//!
//! The generators are pure: they emit [`FlowRequest`] values (or round
//! state machines) and never touch the simulator, so the same workload
//! can drive the packet simulator, the monitoring accuracy harness, and
//! unit tests. Published CDFs are encoded as piecewise log-linear
//! interpolations in [`fsize`]; exact trace files are proprietary, so the
//! curves approximate the published plots (documented per distribution).

pub mod alltoall;
pub mod collective;
pub mod fsize;
pub mod poisson;

pub use alltoall::{AllToAll, AllToAllConfig};
pub use collective::{
    Collective, CollectiveError, PipelineBurst, PipelineConfig, Progress, RingAllreduce,
    RingConfig, TreeAllreduce, TreeConfig,
};
pub use fsize::FlowSizeDist;
pub use poisson::{PoissonConfig, PoissonWorkload};

/// Host identifier within a workload (maps to a simulator node).
pub type HostId = usize;

/// Nanoseconds since simulation start (matches the simulator clock).
pub type Nanos = u64;

/// One flow the workload asks the network to carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRequest {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Flow size in bytes.
    pub bytes: u64,
    /// Requested start time.
    pub start: Nanos,
}
