//! Runtime invariant auditor for the PARALEON stack.
//!
//! Every figure the repo reproduces rests on accounting invariants the
//! simulator only implicitly maintains: packet conservation, shared-buffer
//! occupancy, PFC XOFF/XON pairing, DCQCN rate bounds, utility-term
//! ranges. A silent violation corrupts the Eq. (1) utility terms without
//! failing a single test, so this crate gives every layer a cheap way to
//! assert its invariants at runtime.
//!
//! The crate follows the same fold-away discipline as `paraleon-telemetry`,
//! with the inverse polarity: auditing is **opt-in** via the `enabled`
//! cargo feature. With the feature off (the default), every entry point is
//! an empty `#[inline(always)]` function and every audit-state type is a
//! zero-sized struct — the hot path pays nothing, not even a branch. With
//! the feature on, a thread-local registry collects typed
//! [`AuditViolation`]s, each with the telemetry flight-recorder tail
//! attached for post-mortem context.
//!
//! Violation handling is mode-dependent: in debug builds (and CI jobs that
//! compile with `-C debug-assertions`) a violation panics at the detection
//! site; in release builds it increments a counter that harnesses check at
//! the end of a run. Both behaviors can be overridden per-thread with
//! [`set_panic_on_violation`].

#[cfg(feature = "enabled")]
use std::cell::{Cell, RefCell};

use paraleon_telemetry::TimedEvent;

/// How many violations the registry keeps with full context. Counting
/// continues past this; only the stored reports are bounded.
#[cfg(feature = "enabled")]
const MAX_KEPT: usize = 64;

/// How many flight-recorder events are attached to each violation.
#[cfg(feature = "enabled")]
const TAIL_LEN: usize = 16;

/// `true` when the crate was built with the `enabled` feature. `const`,
/// so `if !compiled_in() { return; }` folds the guarded code away.
pub const fn compiled_in() -> bool {
    cfg!(feature = "enabled")
}

/// A typed invariant violation. Variants carry enough state to diagnose
/// the break without re-running; the flight tail supplies the lead-up.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditViolation {
    /// A flow delivered/dropped more bytes' worth of packets than it
    /// injected (double-free or mis-attributed slot recycling).
    PacketConservation {
        /// Flow id whose tally went negative.
        flow: u64,
        /// Packets injected into the arena for this flow.
        injected: u64,
        /// Packets consumed at the destination.
        delivered: u64,
        /// Packets dropped (buffer overflow, fault, no route).
        dropped: u64,
    },
    /// The per-flow tallies no longer sum to the arena's live count
    /// (a packet entered or left the pool without passing an audit hook).
    PoolAccounting {
        /// Σ over flows of (injected − delivered − dropped).
        tracked_in_flight: u64,
        /// What the arena itself reports as live.
        pool_in_flight: u64,
    },
    /// A switch's shared-buffer occupancy disagrees with the sum of its
    /// queued bytes or its per-ingress accounting.
    BufferAccounting {
        /// Switch node id.
        switch: u32,
        /// The switch's `buffer_used` counter.
        buffer_used: u64,
        /// Σ of lossless-class `qbytes` over ports.
        queued: u64,
        /// Σ of `ingress_bytes` over ingress ports.
        ingress: u64,
    },
    /// A switch's occupancy exceeds the configured shared-buffer size.
    BufferOverflow {
        /// Switch node id.
        switch: u32,
        /// The switch's `buffer_used` counter.
        buffer_used: u64,
        /// Configured shared-buffer capacity.
        buffer_total: u64,
    },
    /// A per-(port, class) byte counter disagrees with the wire bytes of
    /// the packets actually sitting in that queue.
    QueueAccounting {
        /// Switch node id.
        switch: u32,
        /// Egress port index.
        port: u32,
        /// Traffic class index.
        class: u32,
        /// The maintained `qbytes` counter.
        qbytes: u64,
        /// Σ wire bytes of the queue's entries.
        queued: u64,
    },
    /// XOFF sent on an ingress that already has an open pause interval.
    PfcDoubleXoff {
        /// Switch that emitted the pause.
        switch: u32,
        /// Ingress port it paused.
        port: u32,
    },
    /// XON sent on an ingress with no open pause interval.
    PfcUnpairedXon {
        /// Switch that emitted the resume.
        switch: u32,
        /// Ingress port it resumed.
        port: u32,
    },
    /// A paused egress dequeued lossless-class traffic.
    PfcPausedDequeue {
        /// Node whose egress violated the pause.
        node: u32,
        /// Egress port index (0 for hosts).
        port: u32,
    },
    /// Accumulated pause time exceeded the wall-clock budget for the
    /// interval (per port: dt; per node: dt × ports).
    PfcPauseOverflow {
        /// Node whose pause accounting overflowed.
        node: u32,
        /// Accumulated pause nanoseconds this interval.
        pause_ns: u64,
        /// Maximum legitimately accumulable nanoseconds.
        budget_ns: u64,
    },
    /// The calendar queue ran time backwards, or popped the exact same
    /// `(time, seq)` twice in a row (duplicate causal key).
    EventOrder {
        /// Timestamp of the previously popped event.
        prev_at: u64,
        /// Sequence number of the previously popped event.
        prev_seq: u64,
        /// Timestamp of the offending pop.
        at: u64,
        /// Sequence number of the offending pop.
        seq: u64,
    },
    /// DCQCN rate bounds broken: `min_rate ≤ R_C ≤ R_T ≤ line_rate`.
    RateBounds {
        /// Current rate R_C, bytes/sec.
        rate_current: f64,
        /// Target rate R_T, bytes/sec.
        rate_target: f64,
        /// Configured minimum rate, bytes/sec.
        min_rate: f64,
        /// Link line rate, bytes/sec.
        line_rate: f64,
    },
    /// DCQCN α left `[0, 1]`.
    AlphaBounds {
        /// The offending α.
        alpha: f64,
    },
    /// A utility term left `[0, 1]` before clamping.
    UtilityTermBounds {
        /// Which term ("O_TP", "O_RTT", "O_PFC", "U").
        term: &'static str,
        /// The raw out-of-range value.
        value: f64,
    },
    /// A monitor upload was not aligned to a λ_MI boundary.
    MiBoundary {
        /// Interval start, ns.
        start: u64,
        /// Interval end (collection instant), ns.
        end: u64,
        /// Configured monitor interval, ns.
        lambda_mi: u64,
    },
    /// A parallel shard reached a collection barrier with undelivered
    /// cross-shard handoffs still sitting in its outboxes — packets (or
    /// pause frames) that belong to no arena and would silently break
    /// conservation across the cut.
    CrossShardResidue {
        /// The shard holding the residue.
        shard: u32,
        /// Undelivered handoff messages.
        pending: u64,
    },
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use AuditViolation::*;
        match self {
            PacketConservation {
                flow,
                injected,
                delivered,
                dropped,
            } => write!(
                f,
                "packet conservation: flow {flow} injected {injected} < delivered {delivered} + dropped {dropped}"
            ),
            PoolAccounting {
                tracked_in_flight,
                pool_in_flight,
            } => write!(
                f,
                "pool accounting: tallies say {tracked_in_flight} in flight, arena says {pool_in_flight}"
            ),
            BufferAccounting {
                switch,
                buffer_used,
                queued,
                ingress,
            } => write!(
                f,
                "buffer accounting: switch {switch} buffer_used {buffer_used} != queued {queued} (ingress sum {ingress})"
            ),
            BufferOverflow {
                switch,
                buffer_used,
                buffer_total,
            } => write!(
                f,
                "buffer overflow: switch {switch} buffer_used {buffer_used} > capacity {buffer_total}"
            ),
            QueueAccounting {
                switch,
                port,
                class,
                qbytes,
                queued,
            } => write!(
                f,
                "queue accounting: switch {switch} port {port} class {class} qbytes {qbytes} != queued {queued}"
            ),
            PfcDoubleXoff { switch, port } => {
                write!(f, "pfc pairing: switch {switch} re-XOFFed paused ingress {port}")
            }
            PfcUnpairedXon { switch, port } => {
                write!(f, "pfc pairing: switch {switch} XONed unpaused ingress {port}")
            }
            PfcPausedDequeue { node, port } => write!(
                f,
                "pfc pause: node {node} dequeued lossless traffic from paused egress {port}"
            ),
            PfcPauseOverflow {
                node,
                pause_ns,
                budget_ns,
            } => write!(
                f,
                "pfc pause: node {node} accumulated {pause_ns}ns pause > budget {budget_ns}ns"
            ),
            EventOrder {
                prev_at,
                prev_seq,
                at,
                seq,
            } => write!(
                f,
                "event order: popped (t={at}, seq={seq}) after (t={prev_at}, seq={prev_seq})"
            ),
            RateBounds {
                rate_current,
                rate_target,
                min_rate,
                line_rate,
            } => write!(
                f,
                "dcqcn rate bounds: require min {min_rate:.3e} <= R_C {rate_current:.3e} <= R_T {rate_target:.3e} <= line {line_rate:.3e}"
            ),
            AlphaBounds { alpha } => write!(f, "dcqcn alpha {alpha} outside [0, 1]"),
            UtilityTermBounds { term, value } => {
                write!(f, "utility term {term} = {value} outside [0, 1]")
            }
            MiBoundary {
                start,
                end,
                lambda_mi,
            } => write!(
                f,
                "monitor upload [{start}, {end}] not aligned to lambda_MI {lambda_mi}"
            ),
            CrossShardResidue { shard, pending } => write!(
                f,
                "shard {shard} reached a barrier with {pending} undelivered cross-shard handoffs"
            ),
        }
    }
}

/// A recorded violation plus the flight-recorder tail at detection time.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// The violated invariant.
    pub violation: AuditViolation,
    /// Last [`TAIL_LEN`] telemetry flight events before detection (empty
    /// when telemetry is compiled out or disabled).
    pub flight_tail: Vec<TimedEvent>,
}

#[cfg(feature = "enabled")]
struct Registry {
    active: Cell<bool>,
    panic_on_violation: Cell<bool>,
    count: Cell<u64>,
    reports: RefCell<Vec<AuditReport>>,
}

#[cfg(feature = "enabled")]
thread_local! {
    static REGISTRY: Registry = const {
        Registry {
            // Audited builds audit by default: probes and CI jobs need no
            // setup call, and the differential harness opts out explicitly.
            active: Cell::new(true),
            panic_on_violation: Cell::new(cfg!(debug_assertions)),
            count: Cell::new(0),
            reports: RefCell::new(Vec::new()),
        }
    };
}

/// Whether auditing is live on this thread (compiled in AND not
/// runtime-disabled). Callers with non-trivial check bodies should gate
/// on this; with the feature off it is `const false` and the guarded
/// code folds away.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "enabled")]
    {
        REGISTRY.with(|r| r.active.get())
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Runtime kill-switch for this thread's auditing (reporting side only:
/// state hooks keep tallying so re-enabling never sees torn state).
pub fn set_enabled(on: bool) {
    #[cfg(feature = "enabled")]
    REGISTRY.with(|r| r.active.set(on));
    #[cfg(not(feature = "enabled"))]
    let _ = on;
}

/// Override the violation disposition for this thread: `true` panics at
/// the detection site (debug default), `false` counts and continues
/// (release default). Unit tests that *expect* violations use this.
pub fn set_panic_on_violation(on: bool) {
    #[cfg(feature = "enabled")]
    REGISTRY.with(|r| r.panic_on_violation.set(on));
    #[cfg(not(feature = "enabled"))]
    let _ = on;
}

/// Current violation disposition for this thread (`true` = panic at the
/// detection site). The parallel engine's coordinator reads this to
/// propagate its own disposition onto worker threads, whose thread-local
/// registries otherwise start from the build-profile default.
pub fn panic_on_violation() -> bool {
    #[cfg(feature = "enabled")]
    {
        REGISTRY.with(|r| r.panic_on_violation.get())
    }
    #[cfg(not(feature = "enabled"))]
    {
        cfg!(debug_assertions)
    }
}

/// Total violations reported on this thread since the last [`reset`].
pub fn violation_count() -> u64 {
    #[cfg(feature = "enabled")]
    {
        REGISTRY.with(|r| r.count.get())
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// The recorded violations (bounded; the count keeps going past the
/// storage cap).
pub fn violations() -> Vec<AuditReport> {
    #[cfg(feature = "enabled")]
    {
        REGISTRY.with(|r| r.reports.borrow().clone())
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Clear this thread's violation count and stored reports.
pub fn reset() {
    #[cfg(feature = "enabled")]
    REGISTRY.with(|r| {
        r.count.set(0);
        r.reports.borrow_mut().clear();
    });
}

/// Atomically take this thread's violation count and stored reports,
/// leaving the registry empty. Harnesses that evaluate several runs in
/// one process (e.g. the anomaly hunter) drain per run so violations
/// never leak across run boundaries.
pub fn drain() -> (u64, Vec<AuditReport>) {
    #[cfg(feature = "enabled")]
    {
        REGISTRY.with(|r| {
            let n = r.count.replace(0);
            let reports = std::mem::take(&mut *r.reports.borrow_mut());
            (n, reports)
        })
    }
    #[cfg(not(feature = "enabled"))]
    {
        (0, Vec::new())
    }
}

/// Merge violations drained on another thread into this thread's
/// registry — the parallel engine's epoch barrier folds each worker
/// shard's tallies back into the coordinator so `violation_count()` /
/// `violations()` observed by the harness match a serial run. Respects
/// the storage cap; the count is always added in full.
pub fn absorb(count: u64, reports: Vec<AuditReport>) {
    #[cfg(feature = "enabled")]
    REGISTRY.with(|r| {
        r.count.set(r.count.get() + count);
        let mut kept = r.reports.borrow_mut();
        for rep in reports {
            if kept.len() >= MAX_KEPT {
                break;
            }
            kept.push(rep);
        }
    });
    #[cfg(not(feature = "enabled"))]
    let _ = (count, reports);
}

/// Record a violation: count it, attach the flight tail, and either
/// panic (debug/CI) or continue (release).
pub fn report(violation: AuditViolation) {
    #[cfg(feature = "enabled")]
    {
        let tail = {
            let mut ev = paraleon_telemetry::flight_events();
            if ev.len() > TAIL_LEN {
                ev.drain(..ev.len() - TAIL_LEN);
            }
            ev
        };
        let panic_now = REGISTRY.with(|r| {
            r.count.set(r.count.get() + 1);
            let mut reports = r.reports.borrow_mut();
            if reports.len() < MAX_KEPT {
                reports.push(AuditReport {
                    violation: violation.clone(),
                    flight_tail: tail.clone(),
                });
            }
            r.panic_on_violation.get()
        });
        if panic_now {
            let mut msg = format!(
                "audit violation: {violation}\nflight tail ({} events):",
                tail.len()
            );
            for te in &tail {
                msg.push_str(&format!("\n  {te:?}"));
            }
            panic!("{msg}");
        }
    }
    #[cfg(not(feature = "enabled"))]
    let _ = violation;
}

/// Assert `ok`, lazily building the violation on failure. The closure is
/// never evaluated when the check passes or auditing is off, so call
/// sites can capture context for free.
#[inline(always)]
pub fn check(ok: bool, make: impl FnOnce() -> AuditViolation) {
    #[cfg(feature = "enabled")]
    if !ok && enabled() {
        report(make());
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (ok, &make);
    }
}

/// Per-flow packet-conservation tallies, embedded in the packet arena.
/// ZST when the feature is off.
#[derive(Debug, Default)]
pub struct ConservationAudit {
    #[cfg(feature = "enabled")]
    flows: std::collections::HashMap<u64, FlowTally>,
}

#[cfg(feature = "enabled")]
#[derive(Debug, Default, Clone, Copy)]
struct FlowTally {
    injected: u64,
    delivered: u64,
    dropped: u64,
}

impl ConservationAudit {
    /// A packet of `flow` entered the arena.
    #[inline(always)]
    pub fn injected(&mut self, flow: u64) {
        #[cfg(feature = "enabled")]
        {
            self.flows.entry(flow).or_default().injected += 1;
        }
        #[cfg(not(feature = "enabled"))]
        let _ = flow;
    }

    /// A packet of `flow` was consumed at its destination.
    #[inline(always)]
    pub fn delivered(&mut self, flow: u64) {
        #[cfg(feature = "enabled")]
        {
            let t = self.flows.entry(flow).or_default();
            t.delivered += 1;
            check(t.delivered + t.dropped <= t.injected, || {
                AuditViolation::PacketConservation {
                    flow,
                    injected: t.injected,
                    delivered: t.delivered,
                    dropped: t.dropped,
                }
            });
        }
        #[cfg(not(feature = "enabled"))]
        let _ = flow;
    }

    /// A packet of `flow` was dropped (buffer overflow, fault, no route).
    #[inline(always)]
    pub fn dropped(&mut self, flow: u64) {
        #[cfg(feature = "enabled")]
        {
            let t = self.flows.entry(flow).or_default();
            t.dropped += 1;
            check(t.delivered + t.dropped <= t.injected, || {
                AuditViolation::PacketConservation {
                    flow,
                    injected: t.injected,
                    delivered: t.delivered,
                    dropped: t.dropped,
                }
            });
        }
        #[cfg(not(feature = "enabled"))]
        let _ = flow;
    }

    /// Σ over flows of (injected − delivered − dropped): what the tallies
    /// say is still in flight.
    pub fn tracked_in_flight(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.flows
                .values()
                .map(|t| t.injected - t.delivered - t.dropped)
                .sum()
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Cross-check the tallies against the arena's own live count.
    #[inline(always)]
    pub fn check_pool(&self, pool_in_flight: u64) {
        #[cfg(feature = "enabled")]
        {
            let tracked = self.tracked_in_flight();
            check(tracked == pool_in_flight, || {
                AuditViolation::PoolAccounting {
                    tracked_in_flight: tracked,
                    pool_in_flight,
                }
            });
        }
        #[cfg(not(feature = "enabled"))]
        let _ = pool_in_flight;
    }
}

/// XOFF/XON pairing mirror: one open-pause bit per (switch, ingress
/// port), updated at the emission sites. ZST when the feature is off.
#[derive(Debug, Default)]
pub struct PfcPairAudit {
    #[cfg(feature = "enabled")]
    open: std::collections::HashSet<(u32, u32)>,
}

impl PfcPairAudit {
    /// `switch` paused ingress `port`. Flags a double XOFF.
    #[inline(always)]
    pub fn xoff(&mut self, switch: u32, port: u32) {
        #[cfg(feature = "enabled")]
        {
            let fresh = self.open.insert((switch, port));
            check(fresh, || AuditViolation::PfcDoubleXoff { switch, port });
        }
        #[cfg(not(feature = "enabled"))]
        let _ = (switch, port);
    }

    /// `switch` resumed ingress `port`. Flags an unpaired XON.
    #[inline(always)]
    pub fn xon(&mut self, switch: u32, port: u32) {
        #[cfg(feature = "enabled")]
        {
            let was_open = self.open.remove(&(switch, port));
            check(was_open, || AuditViolation::PfcUnpairedXon { switch, port });
        }
        #[cfg(not(feature = "enabled"))]
        let _ = (switch, port);
    }

    /// Number of currently open pause intervals (XOFF without XON yet —
    /// legal mid-run, every one must eventually close or persist to the
    /// end of the run as an open interval).
    pub fn open_pauses(&self) -> usize {
        #[cfg(feature = "enabled")]
        {
            self.open.len()
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }
}

/// Pop-order monitor for the event scheduler: popped timestamps must
/// never decrease, and no `(time, seq)` pair may pop twice in a row
/// (duplicate causal key). Same-time pops with a *smaller* key are
/// legal and expected under causal keys: a handler (or a mid-run API
/// call such as `add_flow` at a collection boundary) may insert an
/// event at the current instant whose key is below an already-popped
/// one — the scheduler's promise is min-`(time, key)` over the events
/// *pending at pop time*, which only a differential test against a
/// reference heap can check (`scheduler_differential.rs` does). ZST
/// when the feature is off.
#[derive(Debug, Default, Clone)]
pub struct OrderAudit {
    #[cfg(feature = "enabled")]
    last: Option<(u64, u64)>,
}

impl OrderAudit {
    /// Observe one popped `(at, seq)`.
    #[inline(always)]
    pub fn observe(&mut self, at: u64, seq: u64) {
        #[cfg(feature = "enabled")]
        {
            if let Some((prev_at, prev_seq)) = self.last {
                check(at > prev_at || (at == prev_at && seq != prev_seq), || {
                    AuditViolation::EventOrder {
                        prev_at,
                        prev_seq,
                        at,
                        seq,
                    }
                });
            }
            self.last = Some((at, seq));
        }
        #[cfg(not(feature = "enabled"))]
        let _ = (at, seq);
    }

    /// Forget the last observation (queue cleared / reused).
    pub fn reset(&mut self) {
        #[cfg(feature = "enabled")]
        {
            self.last = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_crate_folds_to_nothing() {
        if compiled_in() {
            return; // covered by the enabled-feature tests below
        }
        assert!(!enabled());
        report(AuditViolation::AlphaBounds { alpha: 2.0 });
        assert_eq!(violation_count(), 0);
        assert!(violations().is_empty());
        assert_eq!(std::mem::size_of::<ConservationAudit>(), 0);
        assert_eq!(std::mem::size_of::<PfcPairAudit>(), 0);
        assert_eq!(std::mem::size_of::<OrderAudit>(), 0);
    }

    #[cfg(feature = "enabled")]
    mod enabled {
        use super::super::*;

        fn fresh() {
            reset();
            set_enabled(true);
            set_panic_on_violation(false);
        }

        #[test]
        fn counts_and_stores_violations() {
            fresh();
            report(AuditViolation::AlphaBounds { alpha: 1.5 });
            assert_eq!(violation_count(), 1);
            let v = violations();
            assert_eq!(v.len(), 1);
            assert_eq!(v[0].violation, AuditViolation::AlphaBounds { alpha: 1.5 });
            reset();
            assert_eq!(violation_count(), 0);
        }

        #[test]
        #[should_panic(expected = "audit violation")]
        fn panics_when_asked() {
            fresh();
            set_panic_on_violation(true);
            report(AuditViolation::AlphaBounds { alpha: -0.1 });
        }

        #[test]
        fn check_is_lazy_and_gated() {
            fresh();
            check(true, || unreachable!("closure must not run on pass"));
            set_enabled(false);
            check(false, || AuditViolation::AlphaBounds { alpha: 9.0 });
            assert_eq!(violation_count(), 0, "disabled thread must not report");
            set_enabled(true);
            check(false, || AuditViolation::AlphaBounds { alpha: 9.0 });
            assert_eq!(violation_count(), 1);
        }

        #[test]
        fn conservation_tallies_flag_overdraw() {
            fresh();
            let mut c = ConservationAudit::default();
            c.injected(7);
            c.injected(7);
            c.delivered(7);
            c.dropped(7);
            assert_eq!(violation_count(), 0);
            assert_eq!(c.tracked_in_flight(), 0);
            c.check_pool(0);
            assert_eq!(violation_count(), 0);
            c.delivered(7); // third exit for two entries
            assert_eq!(violation_count(), 1);
        }

        #[test]
        fn pool_cross_check_flags_mismatch() {
            fresh();
            let mut c = ConservationAudit::default();
            c.injected(1);
            c.check_pool(2);
            assert_eq!(violation_count(), 1);
        }

        #[test]
        fn pfc_pairing_flags_double_xoff_and_unpaired_xon() {
            fresh();
            let mut p = PfcPairAudit::default();
            p.xoff(3, 1);
            assert_eq!(p.open_pauses(), 1);
            p.xoff(3, 1);
            assert_eq!(violation_count(), 1);
            p.xon(3, 1);
            assert_eq!(p.open_pauses(), 0);
            p.xon(3, 1);
            assert_eq!(violation_count(), 2);
        }

        #[test]
        fn order_audit_flags_regression() {
            fresh();
            let mut o = OrderAudit::default();
            o.observe(10, 0);
            o.observe(10, 1);
            o.observe(11, 5);
            // Same time, smaller key: a causal child or mid-run API
            // insertion at the current instant — legal.
            o.observe(11, 0);
            assert_eq!(violation_count(), 0);
            o.observe(11, 0); // exact duplicate (time, key) pop
            assert_eq!(violation_count(), 1);
            o.observe(5, 9); // time went backwards
            assert_eq!(violation_count(), 2);
        }
    }
}
