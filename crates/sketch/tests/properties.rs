//! Property-based tests for the measurement structures.

use proptest::prelude::*;
use std::collections::HashMap;

use paraleon_sketch::{
    ElasticSketch, FlowState, Fsd, FsdBuilder, SketchConfig, SlidingWindowClassifier, WindowConfig,
};

fn inserts() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..64, 1u64..100_000), 1..300)
}

proptest! {
    /// The sketch estimate never underestimates a flow's true bytes
    /// (count-min property preserved through heavy-part eviction).
    #[test]
    fn sketch_never_underestimates(ins in inserts()) {
        let mut s = ElasticSketch::new(SketchConfig {
            heavy_buckets: 8, // force collisions and evictions
            ..SketchConfig::default()
        });
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for (f, b) in &ins {
            s.insert(*f, *b);
            *truth.entry(*f).or_insert(0) += *b;
        }
        for (f, t) in truth {
            prop_assert!(s.query(f) >= t, "flow {f}: {} < {t}", s.query(f));
        }
    }

    /// Total bytes drained from the heavy part never exceed the bytes
    /// inserted (no phantom traffic).
    #[test]
    fn drained_bytes_bounded_by_inserted(ins in inserts()) {
        let mut s = ElasticSketch::new(SketchConfig::default());
        let mut total = 0u64;
        for (f, b) in &ins {
            s.insert(*f, *b);
            total += *b;
        }
        let drained: u64 = s.drain().iter().map(|e| e.bytes).sum();
        // Flagged entries fold in light-part residue, which is an
        // overestimate per flow but still bounded by the total inserted
        // plus the count-min collision noise (bounded by total itself).
        prop_assert!(drained <= 2 * total);
    }

    /// Drain leaves the sketch empty.
    #[test]
    fn drain_resets(ins in inserts()) {
        let mut s = ElasticSketch::new(SketchConfig::default());
        for (f, b) in &ins {
            s.insert(*f, *b);
        }
        s.drain();
        for (f, _) in &ins {
            prop_assert_eq!(s.query(*f), 0);
        }
    }

    /// Once a flow reaches E it stays E while it remains tracked
    /// (state stickiness that naive per-interval classification lacks).
    #[test]
    fn elephant_state_is_sticky(
        trickle in prop::collection::vec(1u64..50_000, 1..6),
    ) {
        let cfg = WindowConfig::default();
        let mut c = SlidingWindowClassifier::new(cfg);
        c.end_interval([(9u64, cfg.tau_bytes)]);
        prop_assert_eq!(c.state(9), Some(FlowState::Elephant));
        for b in trickle {
            c.end_interval([(9u64, b)]);
            prop_assert_eq!(c.state(9), Some(FlowState::Elephant));
        }
    }

    /// Cumulative bytes equal the sum of per-interval inputs.
    #[test]
    fn classifier_conserves_bytes(
        per_interval in prop::collection::vec(0u64..100_000, 1..8),
    ) {
        let mut c = SlidingWindowClassifier::new(WindowConfig::default());
        let mut total = 0;
        for b in &per_interval {
            c.end_interval([(1u64, *b)]);
            total += *b;
        }
        // The flow may have expired if it trailed with enough zeros.
        if let Some(cum) = c.cumulative_bytes(1) {
            prop_assert_eq!(cum, total);
        }
    }

    /// KL divergence of the share distribution is non-negative, finite,
    /// and zero against itself, for arbitrary flow populations.
    #[test]
    fn kl_properties(
        flows_a in prop::collection::vec((1u64..1u64<<28, 0.0f64..1.0), 0..50),
        flows_b in prop::collection::vec((1u64..1u64<<28, 0.0f64..1.0), 0..50),
    ) {
        let build = |flows: &[(u64, f64)]| {
            let mut b = FsdBuilder::new();
            for (size, w) in flows {
                b.add_flow(*size, *w);
            }
            b.build()
        };
        let a = build(&flows_a);
        let b = build(&flows_b);
        let kl_ab = a.kl_shares(&b);
        prop_assert!(kl_ab >= 0.0 && kl_ab.is_finite());
        prop_assert!(a.kl_shares(&a) < 1e-9);
        prop_assert!(a.kl_divergence(&a) < 1e-9);
        prop_assert!(a.kl_divergence(&b) >= 0.0);
    }

    /// Merging FSDs is commutative in every observable.
    #[test]
    fn fsd_merge_commutes(
        flows_a in prop::collection::vec((1u64..1u64<<28, 0.0f64..1.0), 0..40),
        flows_b in prop::collection::vec((1u64..1u64<<28, 0.0f64..1.0), 0..40),
    ) {
        let build = |flows: &[(u64, f64)]| {
            let mut b = FsdBuilder::new();
            for (size, w) in flows {
                b.add_flow(*size, *w);
            }
            b.build()
        };
        let mut ab = build(&flows_a);
        ab.merge(&build(&flows_b));
        let mut ba = build(&flows_b);
        ba.merge(&build(&flows_a));
        prop_assert!((ab.elephant_share() - ba.elephant_share()).abs() < 1e-12);
        prop_assert!((ab.flow_mass() - ba.flow_mass()).abs() < 1e-9);
        prop_assert!(ab.kl_divergence(&ba) < 1e-12);
    }

    /// The normalized histogram is a probability distribution.
    #[test]
    fn hist_is_a_distribution(
        flows in prop::collection::vec((1u64..u64::MAX, 0.0f64..1.0), 0..60),
    ) {
        let mut b = FsdBuilder::new();
        for (size, w) in &flows {
            b.add_flow(*size, *w);
        }
        let f = b.build();
        let h = f.normalized_hist();
        let sum: f64 = h.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(h.iter().all(|&x| x >= 0.0));
        let _ = Fsd::empty().normalized_hist();
    }

    /// Elephant share stays within [0, 1].
    #[test]
    fn elephant_share_bounded(
        flows in prop::collection::vec((1u64..1u64<<30, 0.0f64..1.0), 0..60),
    ) {
        let mut b = FsdBuilder::new();
        for (size, w) in &flows {
            b.add_flow(*size, *w);
        }
        let f = b.build();
        prop_assert!((0.0..=1.0).contains(&f.elephant_share()));
        let (_, mu) = f.dominant();
        prop_assert!((0.0..=1.0).contains(&mu));
        prop_assert!(mu >= 0.5 - 1e-12, "dominant proportion is at least half");
    }
}
