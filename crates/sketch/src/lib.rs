//! Sketch-based flow measurement: Elastic Sketch plus PARALEON's
//! accuracy supplements.
//!
//! PARALEON's Runtime Metric Monitor measures the network-wide **flow size
//! distribution (FSD)** every millisecond-scale monitor interval. The data
//! plane runs an [Elastic Sketch](elastic::ElasticSketch) (Yang et al.,
//! SIGCOMM 2018) per measurement point: a *Heavy Part* of vote-based
//! buckets holding elephant flows, backed by a count-min *Light Part* for
//! mice, with the "ostracism" eviction rule keeping elephants resident.
//!
//! Naive per-interval sketch readings misclassify flows at millisecond
//! intervals (a congested elephant may move less than the elephant
//! threshold τ per interval), so the switch control plane adds the paper's
//! two keypoints:
//!
//! * **Keypoint 1** — each packet is inserted into exactly *one* sketch
//!   along its path, enforced by a TOS-bit marking (the simulator models it
//!   as a header flag; see `paraleon-netsim`). This crate stays agnostic:
//!   callers simply don't insert already-marked packets.
//! * **Keypoint 2** — [ternary flow states](window::FlowState)
//!   (elephant / potential-elephant / mice) updated by a
//!   [sliding window](window::SlidingWindowClassifier) over the last δ
//!   monitor intervals, so state transitions survive interval boundaries.
//!
//! The resulting per-switch [FSD](fsd::Fsd) snapshots are aggregated
//! network-wide by `paraleon-monitor`.

pub mod elastic;
pub mod fsd;
pub mod hash;
pub mod window;

pub use elastic::{ElasticSketch, SketchConfig};
pub use fsd::{FlowType, Fsd, FsdBuilder};
pub use window::{FlowState, SlidingWindowClassifier, WindowConfig};

/// Flow identifier (the simulator uses a QP-pair id).
pub type FlowId = u64;
