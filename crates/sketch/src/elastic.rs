//! Elastic Sketch (Yang et al., SIGCOMM 2018): Heavy Part + Light Part
//! with vote-based "ostracism" eviction.
//!
//! * **Heavy Part** — an array of buckets, each holding one candidate
//!   elephant: `(flow id, vote⁺, vote⁻, flag)`. `vote⁺` counts bytes of the
//!   resident flow; `vote⁻` counts bytes of colliding flows. When
//!   `vote⁻ / vote⁺` exceeds the ostracism ratio λ, the resident flow is
//!   *ostracised*: its count is flushed to the Light Part and the colliding
//!   flow takes the bucket with `flag = true` (meaning part of its earlier
//!   traffic may live in the Light Part).
//! * **Light Part** — a count-min sketch of byte counters absorbing mice
//!   and evicted residue.
//!
//! The switch control plane calls [`ElasticSketch::drain`] every monitor
//! interval to read and reset the Heavy Part, exactly as the paper's
//! Tofino agent reads and resets the data-plane registers.

use serde::{Deserialize, Serialize};

use crate::hash::bucket;
use crate::FlowId;

/// Sizing and behaviour knobs, mirroring the SRAM budget of a Tofino
/// deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SketchConfig {
    /// Number of Heavy Part buckets.
    pub heavy_buckets: usize,
    /// Light Part rows (count-min depth).
    pub light_rows: usize,
    /// Light Part counters per row (count-min width).
    pub light_cols: usize,
    /// Ostracism ratio λ: evict when `vote⁻ ≥ λ · vote⁺`.
    pub lambda: u64,
    /// Base hash seed; distinct measurement points should use distinct
    /// seeds, as hardware hash units differ per switch.
    pub seed: u64,
}

impl Default for SketchConfig {
    fn default() -> Self {
        Self {
            heavy_buckets: 1024,
            light_rows: 2,
            light_cols: 4096,
            lambda: 8,
            seed: 0xE1A5_71C5,
        }
    }
}

/// One Heavy Part bucket.
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    flow: FlowId,
    vote_pos: u64,
    vote_neg: u64,
    occupied: bool,
    /// True when the resident flow may have residue in the Light Part.
    flag: bool,
}

/// A drained Heavy Part entry: one candidate elephant and its byte count
/// for the just-ended monitor interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeavyEntry {
    /// The resident flow.
    pub flow: FlowId,
    /// Bytes recorded for the resident flow (`vote⁺`).
    pub bytes: u64,
    /// Whether part of this flow's traffic may sit in the Light Part.
    pub flagged: bool,
}

/// The Elastic Sketch data structure (one per measurement point).
#[derive(Debug, Clone)]
pub struct ElasticSketch {
    cfg: SketchConfig,
    heavy: Vec<Bucket>,
    light: Vec<u64>,
    /// Total bytes inserted since the last drain (diagnostics).
    pub bytes_inserted: u64,
    /// Total packets inserted since the last drain (diagnostics).
    pub packets_inserted: u64,
}

impl ElasticSketch {
    /// Allocate a sketch with the given configuration.
    pub fn new(cfg: SketchConfig) -> Self {
        assert!(cfg.heavy_buckets > 0 && cfg.light_rows > 0 && cfg.light_cols > 0);
        let heavy = vec![Bucket::default(); cfg.heavy_buckets];
        let light = vec![0u64; cfg.light_rows * cfg.light_cols];
        Self {
            cfg,
            heavy,
            light,
            bytes_inserted: 0,
            packets_inserted: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SketchConfig {
        &self.cfg
    }

    /// Record one packet of `bytes` for `flow`.
    pub fn insert(&mut self, flow: FlowId, bytes: u64) {
        self.bytes_inserted += bytes;
        self.packets_inserted += 1;
        let idx = bucket(flow, self.cfg.seed, self.cfg.heavy_buckets);
        let b = &mut self.heavy[idx];
        if !b.occupied {
            *b = Bucket {
                flow,
                vote_pos: bytes,
                vote_neg: 0,
                occupied: true,
                flag: false,
            };
            return;
        }
        if b.flow == flow {
            b.vote_pos += bytes;
            return;
        }
        b.vote_neg += bytes;
        if b.vote_neg >= self.cfg.lambda.max(1) * b.vote_pos.max(1) {
            // Ostracism: flush the incumbent to the Light Part, seat the
            // challenger. The challenger's earlier bytes (its own vote⁻
            // contributions) stay in the Light Part, hence the flag.
            let (old_flow, old_bytes) = (b.flow, b.vote_pos);
            *b = Bucket {
                flow,
                vote_pos: bytes,
                vote_neg: 0,
                occupied: true,
                flag: true,
            };
            self.light_insert(old_flow, old_bytes);
        } else {
            self.light_insert(flow, bytes);
        }
    }

    fn light_insert(&mut self, flow: FlowId, bytes: u64) {
        let cols = self.cfg.light_cols;
        for row in 0..self.cfg.light_rows {
            let c = bucket(flow, self.cfg.seed ^ (0xA5A5 + row as u64), cols);
            self.light[row * cols + c] = self.light[row * cols + c].saturating_add(bytes);
        }
    }

    fn light_query(&self, flow: FlowId) -> u64 {
        let cols = self.cfg.light_cols;
        (0..self.cfg.light_rows)
            .map(|row| {
                let c = bucket(flow, self.cfg.seed ^ (0xA5A5 + row as u64), cols);
                self.light[row * cols + c]
            })
            .min()
            .unwrap_or(0)
    }

    /// Estimated bytes recorded for `flow` in the current interval
    /// (Heavy Part count, plus Light Part residue when flagged).
    pub fn query(&self, flow: FlowId) -> u64 {
        let idx = bucket(flow, self.cfg.seed, self.cfg.heavy_buckets);
        let b = &self.heavy[idx];
        if b.occupied && b.flow == flow {
            if b.flag {
                b.vote_pos + self.light_query(flow)
            } else {
                b.vote_pos
            }
        } else {
            self.light_query(flow)
        }
    }

    /// Read and reset: return all Heavy Part residents (with Light Part
    /// residue folded in for flagged buckets) and clear the sketch. This is
    /// the control-plane operation performed once per monitor interval.
    pub fn drain(&mut self) -> Vec<HeavyEntry> {
        let mut out = Vec::new();
        for i in 0..self.heavy.len() {
            let b = self.heavy[i];
            if b.occupied {
                let bytes = if b.flag {
                    b.vote_pos + self.light_query(b.flow)
                } else {
                    b.vote_pos
                };
                out.push(HeavyEntry {
                    flow: b.flow,
                    bytes,
                    flagged: b.flag,
                });
            }
        }
        self.reset();
        out
    }

    /// Clear all state without reading (used at simulation epoch changes).
    pub fn reset(&mut self) {
        self.heavy.fill(Bucket::default());
        self.light.fill(0);
        self.bytes_inserted = 0;
        self.packets_inserted = 0;
    }

    /// Approximate SRAM footprint in bytes (Table IV memory accounting):
    /// heavy buckets are 2×32-bit counters + 32-bit key + flags ≈ 16 B,
    /// light counters 4 B.
    pub fn memory_bytes(&self) -> usize {
        self.cfg.heavy_buckets * 16 + self.cfg.light_rows * self.cfg.light_cols * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch() -> ElasticSketch {
        ElasticSketch::new(SketchConfig::default())
    }

    #[test]
    fn single_flow_is_exact() {
        let mut s = sketch();
        for _ in 0..100 {
            s.insert(7, 1000);
        }
        assert_eq!(s.query(7), 100_000);
    }

    #[test]
    fn drain_returns_heavy_entries_and_resets() {
        let mut s = sketch();
        s.insert(1, 5_000);
        s.insert(2, 7_000);
        let entries = s.drain();
        assert_eq!(entries.len(), 2);
        let total: u64 = entries.iter().map(|e| e.bytes).sum();
        assert_eq!(total, 12_000);
        assert!(s.drain().is_empty());
        assert_eq!(s.query(1), 0);
    }

    #[test]
    fn ostracism_evicts_small_incumbent() {
        // Two flows forced into one bucket: tiny incumbent, huge challenger.
        let cfg = SketchConfig {
            heavy_buckets: 1,
            ..SketchConfig::default()
        };
        let mut s = ElasticSketch::new(cfg);
        s.insert(1, 100); // incumbent
        for _ in 0..20 {
            s.insert(2, 1000); // challenger outvotes it quickly
        }
        let entries = s.drain();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].flow, 2);
        assert!(entries[0].flagged);
    }

    #[test]
    fn evicted_flow_still_queryable_via_light_part() {
        let cfg = SketchConfig {
            heavy_buckets: 1,
            ..SketchConfig::default()
        };
        let mut s = ElasticSketch::new(cfg);
        s.insert(1, 100);
        for _ in 0..20 {
            s.insert(2, 1000);
        }
        // Flow 1 was flushed to the light part; count-min never
        // underestimates, so we must see at least its 100 bytes.
        assert!(s.query(1) >= 100);
    }

    #[test]
    fn elephant_survives_mice_crossfire() {
        let cfg = SketchConfig {
            heavy_buckets: 1,
            ..SketchConfig::default()
        };
        let mut s = ElasticSketch::new(cfg);
        // Elephant inserts large volume, interleaved with many one-shot
        // mice. The vote ratio protects the elephant.
        for i in 0..100u64 {
            s.insert(1, 10_000);
            s.insert(1000 + i, 100);
        }
        let entries = s.drain();
        assert_eq!(entries[0].flow, 1);
        assert_eq!(entries[0].bytes, 1_000_000);
    }

    #[test]
    fn count_min_never_underestimates() {
        let mut s = sketch();
        let mut truth = std::collections::HashMap::new();
        // Overload a small light part via heavy collisions.
        for k in 0..5_000u64 {
            let bytes = 100 + (k % 7) * 50;
            s.insert(k, bytes);
            *truth.entry(k).or_insert(0u64) += bytes;
        }
        for (&k, &t) in truth.iter().take(500) {
            assert!(s.query(k) >= t, "flow {k}: est {} < true {t}", s.query(k));
        }
    }

    #[test]
    fn total_bytes_conserved_across_heavy_entries_plus_light() {
        let mut s = sketch();
        let mut total = 0;
        for k in 0..200u64 {
            s.insert(k, 1_000 + k);
            total += 1_000 + k;
        }
        assert_eq!(s.bytes_inserted, total);
        // 200 flows in 1024 buckets see ~10% birthday collisions whose
        // bytes land in the Light Part; the Heavy Part still covers the
        // large majority of traffic.
        let drained: u64 = s.drain().iter().map(|e| e.bytes).sum();
        assert!(
            drained as f64 >= 0.8 * total as f64,
            "heavy part covered only {drained} of {total}"
        );
    }

    #[test]
    fn memory_accounting_matches_config() {
        let s = sketch();
        let cfg = s.config();
        assert_eq!(
            s.memory_bytes(),
            cfg.heavy_buckets * 16 + cfg.light_rows * cfg.light_cols * 4
        );
    }

    #[test]
    fn distinct_seeds_hash_flows_differently() {
        let a = ElasticSketch::new(SketchConfig {
            seed: 1,
            heavy_buckets: 64,
            ..SketchConfig::default()
        });
        let b = ElasticSketch::new(SketchConfig {
            seed: 2,
            heavy_buckets: 64,
            ..SketchConfig::default()
        });
        let same = (0..64u64)
            .filter(|&f| bucket(f, a.cfg.seed, 64) == bucket(f, b.cfg.seed, 64))
            .count();
        assert!(same < 20);
    }

    use crate::hash::bucket;
}
