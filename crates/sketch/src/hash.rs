//! Seeded 64-bit mixers used as the sketch hash family.
//!
//! Tofino-class hardware uses CRC-polynomial hash units; any pairwise-
//! independent-ish mixer reproduces their statistical behaviour. We use
//! SplitMix64 finalisation keyed by a per-row seed: cheap, stateless and
//! deterministic across runs, which keeps whole-simulation replays exact.

/// One member of the hash family, keyed by `seed`.
#[inline]
pub fn hash64(key: u64, seed: u64) -> u64 {
    // SplitMix64 finalizer over key XOR a seed-derived stream constant.
    let mut z = key ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map `key` to a bucket index in `[0, n)` using hash row `seed`.
#[inline]
pub fn bucket(key: u64, seed: u64, n: usize) -> usize {
    debug_assert!(n > 0);
    // Multiply-shift range reduction avoids modulo bias for small n.
    ((hash64(key, seed) as u128 * n as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_inputs() {
        assert_eq!(hash64(42, 7), hash64(42, 7));
        assert_eq!(bucket(42, 7, 1024), bucket(42, 7, 1024));
    }

    #[test]
    fn different_seeds_give_different_rows() {
        let collisions = (0..1000u64)
            .filter(|&k| bucket(k, 1, 64) == bucket(k, 2, 64))
            .count();
        // Independent rows collide with p = 1/64; allow generous slack.
        assert!(collisions < 60, "rows look correlated: {collisions}");
    }

    #[test]
    fn bucket_always_in_range() {
        for k in 0..10_000u64 {
            assert!(bucket(k, 3, 17) < 17);
        }
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let n = 16;
        let mut counts = vec![0usize; n];
        for k in 0..16_000u64 {
            counts[bucket(k, 99, n)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket load: {c}");
        }
    }
}
