//! Keypoint 2: ternary flow states updated by a sliding window.
//!
//! Naive Elastic Sketch classifies a flow from a *single* monitor interval:
//! elephant if it moved ≥ τ bytes within the interval, else mice. At
//! millisecond intervals this misidentifies congested or late-arriving
//! elephants. PARALEON therefore keeps per-flow history in the switch
//! control plane and classifies with three states:
//!
//! * **Elephant (E)** — aggregated bytes `Φ(f) ≥ τ`.
//! * **Potential Elephant (PE)** — `Φ(f) < τ` but the flow has stayed
//!   active (positive bytes) for at least δ consecutive monitor intervals
//!   (δ = window size).
//! * **Mice (M)** — `Φ(f) < τ` and active for fewer than δ intervals.
//!
//! A PE flow contributes to the elephant side of the flow size
//! distribution proportionally to its likelihood of becoming an elephant;
//! we use `min(1, Φ/τ)`, which the paper's "refined as more monitor
//! intervals elapse" describes: Φ only grows while the flow lives, so the
//! estimate sharpens every interval.
//!
//! The unit tests reproduce the exact trace of Figure 4 of the paper
//! (δ = 3, τ = 1 MB, flows f₁/f₂/f₃ over eight monitor intervals).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::fsd::{Fsd, FsdBuilder};
use crate::FlowId;

/// Ternary classification of one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowState {
    /// Aggregated bytes reached τ.
    Elephant,
    /// Under τ but persistently active: likely to become an elephant.
    PotentialElephant,
    /// Small and short-lived.
    Mice,
}

/// Classifier configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Elephant byte threshold τ (paper default 1 MB, after DCTCP).
    pub tau_bytes: u64,
    /// Window size δ: consecutive active intervals required for PE.
    pub delta: usize,
    /// A flow idle for this many consecutive intervals is dropped
    /// (finished); bounds control-plane memory.
    pub expiry_intervals: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self {
            tau_bytes: 1 << 20,
            delta: 3,
            expiry_intervals: 8,
        }
    }
}

#[derive(Debug, Clone)]
struct FlowRecord {
    /// Aggregated bytes Φ(f) since the flow was first seen.
    cum_bytes: u64,
    /// Byte counts of the most recent δ intervals (ring; newest last).
    recent: std::collections::VecDeque<u64>,
    /// Consecutive just-ended intervals with positive bytes.
    active_run: usize,
    /// Consecutive just-ended intervals with zero bytes.
    idle_run: usize,
    state: FlowState,
}

/// The switch-control-plane flow state tracker (Keypoint 2).
#[derive(Debug, Clone)]
pub struct SlidingWindowClassifier {
    cfg: WindowConfig,
    flows: HashMap<FlowId, FlowRecord>,
    /// Number of `end_interval` calls so far.
    pub intervals_processed: u64,
}

impl SlidingWindowClassifier {
    /// Create a classifier with the given configuration.
    pub fn new(cfg: WindowConfig) -> Self {
        assert!(cfg.delta >= 1 && cfg.tau_bytes > 0);
        Self {
            cfg,
            flows: HashMap::new(),
            intervals_processed: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &WindowConfig {
        &self.cfg
    }

    /// Close a monitor interval: feed the per-flow byte counts drained
    /// from the data-plane sketch, update every tracked flow's ternary
    /// state, and expire finished flows.
    pub fn end_interval<I>(&mut self, interval_bytes: I)
    where
        I: IntoIterator<Item = (FlowId, u64)>,
    {
        self.intervals_processed += 1;
        let mut seen: HashMap<FlowId, u64> = HashMap::new();
        for (f, b) in interval_bytes {
            *seen.entry(f).or_insert(0) += b;
        }
        // Update existing flows (active or idle this interval).
        for (f, rec) in self.flows.iter_mut() {
            let bytes = seen.remove(f).unwrap_or(0);
            Self::update_record(&self.cfg, rec, bytes);
        }
        // Newly observed flows.
        for (f, bytes) in seen {
            let mut rec = FlowRecord {
                cum_bytes: 0,
                recent: std::collections::VecDeque::new(),
                active_run: 0,
                idle_run: 0,
                state: FlowState::Mice,
            };
            Self::update_record(&self.cfg, &mut rec, bytes);
            self.flows.insert(f, rec);
        }
        // Expire finished flows.
        let expiry = self.cfg.expiry_intervals.max(1);
        self.flows.retain(|_, r| r.idle_run < expiry);
    }

    fn update_record(cfg: &WindowConfig, rec: &mut FlowRecord, bytes: u64) {
        rec.cum_bytes += bytes;
        rec.recent.push_back(bytes);
        while rec.recent.len() > cfg.delta {
            rec.recent.pop_front();
        }
        if bytes > 0 {
            rec.active_run += 1;
            rec.idle_run = 0;
        } else {
            rec.active_run = 0;
            rec.idle_run += 1;
        }
        rec.state = if rec.cum_bytes >= cfg.tau_bytes {
            FlowState::Elephant
        } else if bytes > 0 && rec.active_run >= cfg.delta {
            FlowState::PotentialElephant
        } else if rec.state == FlowState::PotentialElephant && bytes > 0 {
            // Rule (2): a PE flow stays PE while it remains active.
            FlowState::PotentialElephant
        } else {
            FlowState::Mice
        };
    }

    /// Current state of `flow`, if tracked.
    pub fn state(&self, flow: FlowId) -> Option<FlowState> {
        self.flows.get(&flow).map(|r| r.state)
    }

    /// Aggregated bytes Φ(f), if tracked.
    pub fn cumulative_bytes(&self, flow: FlowId) -> Option<u64> {
        self.flows.get(&flow).map(|r| r.cum_bytes)
    }

    /// Number of flows currently tracked.
    pub fn tracked_flows(&self) -> usize {
        self.flows.len()
    }

    /// Likelihood weight with which a flow counts as elephant:
    /// E → 1, PE → min(1, Φ/τ), M → 0.
    pub fn elephant_weight(&self, flow: FlowId) -> f64 {
        match self.flows.get(&flow) {
            None => 0.0,
            Some(r) => match r.state {
                FlowState::Elephant => 1.0,
                FlowState::PotentialElephant => {
                    (r.cum_bytes as f64 / self.cfg.tau_bytes as f64).min(1.0)
                }
                FlowState::Mice => 0.0,
            },
        }
    }

    /// Build this switch's local flow size distribution snapshot from the
    /// tracked flow states (the per-interval upload to the controller).
    ///
    /// Size bins use the aggregated bytes Φ; byte shares use the recent
    /// δ-interval window, so the share distribution — which drives the KL
    /// trigger and the dominant-type µ — tracks *current* traffic instead
    /// of lifetime volume.
    pub fn local_fsd(&self) -> Fsd {
        let mut b = FsdBuilder::new();
        for (_, r) in self.flows.iter() {
            let w = match r.state {
                FlowState::Elephant => 1.0,
                FlowState::PotentialElephant => {
                    (r.cum_bytes as f64 / self.cfg.tau_bytes as f64).min(1.0)
                }
                FlowState::Mice => 0.0,
            };
            let recent: u64 = r.recent.iter().sum();
            b.add_flow_weighted(r.cum_bytes, recent, w);
        }
        b.build()
    }

    /// Approximate control-plane memory use in bytes (Table IV).
    pub fn memory_bytes(&self) -> usize {
        // id + record ≈ 8 + 32 bytes, plus map overhead factor.
        self.flows.len() * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn classifier() -> SlidingWindowClassifier {
        SlidingWindowClassifier::new(WindowConfig::default())
    }

    /// The exact Figure 4 trace: δ = 3, τ = 1 MB.
    /// f₁ sends ≥ τ in MI₁ → E immediately.
    /// f₂ sends 0.15 MB per MI: M at MI₁–MI₂, PE at MI₃–MI₆, E at MI₇
    /// (cumulative 1.05 MB > τ).
    /// f₃ sends 0.1 MB per MI through MI₇, nothing at MI₈: M → PE at MI₃,
    /// stays PE, never becomes E, expires after going idle.
    #[test]
    fn figure_4_trace() {
        let mut c = classifier();
        let f2_per_mi = (0.15 * MB as f64) as u64;
        let f3_per_mi = MB / 10;

        for mi in 1..=8u32 {
            let mut batch: Vec<(FlowId, u64)> = Vec::new();
            if mi == 1 {
                batch.push((1, 2 * MB)); // f1: elephant from the start
            }
            if mi <= 7 {
                batch.push((2, f2_per_mi));
                batch.push((3, f3_per_mi));
            }
            c.end_interval(batch);

            if mi == 1 {
                assert_eq!(c.state(1), Some(FlowState::Elephant));
                assert_eq!(c.state(2), Some(FlowState::Mice));
                assert_eq!(c.state(3), Some(FlowState::Mice));
            }
            if mi == 2 {
                assert_eq!(c.state(2), Some(FlowState::Mice));
            }
            if (3..=6).contains(&mi) {
                assert_eq!(c.state(2), Some(FlowState::PotentialElephant), "MI{mi}");
                assert_eq!(c.state(3), Some(FlowState::PotentialElephant), "MI{mi}");
            }
            if mi == 7 {
                assert_eq!(c.state(2), Some(FlowState::Elephant));
            }
            if mi == 8 {
                // f3 idle: not elephant, and on its way out.
                assert_ne!(c.state(3), Some(FlowState::Elephant));
            }
        }
    }

    #[test]
    fn single_interval_elephant() {
        let mut c = classifier();
        c.end_interval([(9, 5 * MB)]);
        assert_eq!(c.state(9), Some(FlowState::Elephant));
        assert_eq!(c.elephant_weight(9), 1.0);
    }

    #[test]
    fn short_lived_small_flow_stays_mice() {
        let mut c = classifier();
        c.end_interval([(9, 1000)]);
        c.end_interval([(9, 1000)]);
        assert_eq!(c.state(9), Some(FlowState::Mice));
        assert_eq!(c.elephant_weight(9), 0.0);
    }

    #[test]
    fn pe_weight_grows_with_cumulative_bytes() {
        let mut c = classifier();
        let step = 200 * 1024; // 0.195 MB per interval
        c.end_interval([(9, step)]);
        c.end_interval([(9, step)]);
        c.end_interval([(9, step)]);
        assert_eq!(c.state(9), Some(FlowState::PotentialElephant));
        let w1 = c.elephant_weight(9);
        c.end_interval([(9, step)]);
        let w2 = c.elephant_weight(9);
        assert!(w2 > w1, "likelihood refines upward: {w1} -> {w2}");
        assert!(w2 < 1.0);
    }

    #[test]
    fn elephant_state_is_sticky_across_congestion() {
        // The misidentification naive ES suffers: an elephant throttled to
        // under τ per interval. With history, once E always E while alive.
        let mut c = classifier();
        c.end_interval([(9, 2 * MB)]);
        assert_eq!(c.state(9), Some(FlowState::Elephant));
        for _ in 0..5 {
            c.end_interval([(9, 10_000)]); // trickle under congestion
            assert_eq!(c.state(9), Some(FlowState::Elephant));
        }
    }

    #[test]
    fn idle_flows_expire() {
        let mut c = classifier();
        c.end_interval([(9, 1000)]);
        for _ in 0..WindowConfig::default().expiry_intervals {
            c.end_interval(std::iter::empty());
        }
        assert_eq!(c.state(9), None);
        assert_eq!(c.tracked_flows(), 0);
    }

    #[test]
    fn interrupted_activity_resets_the_window() {
        let mut c = classifier();
        let step = 100 * 1024;
        c.end_interval([(9, step)]);
        c.end_interval([(9, step)]);
        c.end_interval(std::iter::empty()); // gap resets active run
        c.end_interval([(9, step)]);
        c.end_interval([(9, step)]);
        // Only 2 consecutive active intervals since the gap: still mice.
        assert_eq!(c.state(9), Some(FlowState::Mice));
        c.end_interval([(9, step)]);
        assert_eq!(c.state(9), Some(FlowState::PotentialElephant));
    }

    #[test]
    fn duplicate_entries_in_one_interval_are_summed() {
        let mut c = classifier();
        c.end_interval([(9, MB / 2), (9, MB / 2)]);
        assert_eq!(c.state(9), Some(FlowState::Elephant));
    }

    #[test]
    fn local_fsd_reflects_states() {
        let mut c = classifier();
        c.end_interval([(1, 4 * MB), (2, 1000), (3, 2000)]);
        let fsd = c.local_fsd();
        // One elephant carrying almost all bytes.
        assert!(fsd.elephant_share() > 0.99);
    }

    #[test]
    fn memory_grows_linearly_with_flows() {
        let mut c = classifier();
        c.end_interval((0..100u64).map(|f| (f, 1000u64)));
        assert_eq!(c.memory_bytes(), 100 * 48);
    }
}
