//! Flow size distribution (FSD) snapshots, their network-wide merge, and
//! the KL-divergence change detector that triggers tuning.
//!
//! An [`Fsd`] carries two views of one monitor interval:
//!
//! * a **flow-size histogram** over logarithmic size bins (one unit of mass
//!   per flow, PE flows split between the elephant and mice sides by their
//!   likelihood weight) — this is the distribution whose successive KL
//!   divergence `KL(R_t ‖ R_{t−1})` the controller thresholds against θ to
//!   decide whether network-wide traffic changed significantly;
//! * **byte shares** of elephants vs. mice — the "dominant flow type and
//!   its proportion µ" that steers the guided SA mutation.
//!
//! Local per-switch snapshots are merged into the network-wide FSD by
//! plain addition ([`Fsd::merge`]), which is exact because Keypoint 1
//! (single-sketch insertion) guarantees no flow is double-counted.

use serde::{Deserialize, Serialize};

/// Number of logarithmic size bins (2^0 .. 2^39 bytes; everything larger
/// lands in the last bin).
pub const FSD_BINS: usize = 40;

/// Which flow class dominates a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowType {
    /// Long/large flows wanting throughput.
    Elephant,
    /// Short/small flows wanting low latency.
    Mice,
}

/// One interval's flow size distribution snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fsd {
    /// Per-bin flow mass (bin = ⌊log₂ size⌋, clamped).
    hist: Vec<f64>,
    /// Bytes attributed to elephants (E fully, PE by likelihood).
    elephant_bytes: f64,
    /// Bytes attributed to mice.
    mice_bytes: f64,
    /// Flow mass attributed to elephants (each flow contributes its
    /// likelihood weight).
    elephant_mass: f64,
    /// Flow mass attributed to mice.
    mice_mass: f64,
}

impl Default for Fsd {
    fn default() -> Self {
        Self::empty()
    }
}

impl Fsd {
    /// An empty distribution.
    pub fn empty() -> Self {
        Self {
            hist: vec![0.0; FSD_BINS],
            elephant_bytes: 0.0,
            mice_bytes: 0.0,
            elephant_mass: 0.0,
            mice_mass: 0.0,
        }
    }

    /// Whether no flows were recorded.
    pub fn is_empty(&self) -> bool {
        self.flow_mass() == 0.0
    }

    /// Total observed bytes.
    pub fn total_bytes(&self) -> f64 {
        self.elephant_bytes + self.mice_bytes
    }

    /// Byte share attributed to elephants, in `[0, 1]`; 0 when empty.
    pub fn elephant_share(&self) -> f64 {
        let t = self.total_bytes();
        if t <= 0.0 {
            0.0
        } else {
            self.elephant_bytes / t
        }
    }

    /// Total flow mass (≈ number of flows).
    pub fn flow_mass(&self) -> f64 {
        self.elephant_mass + self.mice_mass
    }

    /// Flow-mass share classified (fully or likely) elephant, `[0, 1]`.
    pub fn elephant_flow_share(&self) -> f64 {
        let m = self.flow_mass();
        if m <= 0.0 {
            0.0
        } else {
            self.elephant_mass / m
        }
    }

    /// The dominant flow type and its proportion µ, by **flow count**
    /// ("the network-wide flow size distribution is composed of 80%
    /// elephant flows and 20% mice flows" — §III-C measures composition
    /// in flows, which is what makes the paper's FB_Hadoop narrative
    /// work: mice dominate while arrivals flow, elephants re-dominate as
    /// the mice drain). An empty FSD defaults to mice with µ = 0.5.
    pub fn dominant(&self) -> (FlowType, f64) {
        if self.flow_mass() <= 0.0 {
            return (FlowType::Mice, 0.5);
        }
        let e = self.elephant_flow_share();
        if e >= 0.5 {
            (FlowType::Elephant, e)
        } else {
            (FlowType::Mice, 1.0 - e)
        }
    }

    /// Merge another (local) snapshot into this one; exact under
    /// Keypoint 1's single-insertion guarantee.
    pub fn merge(&mut self, other: &Fsd) {
        for (a, b) in self.hist.iter_mut().zip(&other.hist) {
            *a += b;
        }
        self.elephant_bytes += other.elephant_bytes;
        self.mice_bytes += other.mice_bytes;
        self.elephant_mass += other.elephant_mass;
        self.mice_mass += other.mice_mass;
    }

    /// A copy with every mass and byte tally multiplied by `w` — the
    /// staleness-weighted partial aggregation primitive: a cached local
    /// snapshot whose upload went missing is merged at a decayed weight
    /// instead of poisoning the network-wide merge at full strength.
    /// `w = 1` is the identity (bit-for-bit), `w = 0` contributes
    /// nothing.
    pub fn scaled(&self, w: f64) -> Fsd {
        if w == 1.0 {
            return self.clone();
        }
        let w = w.max(0.0);
        Fsd {
            hist: self.hist.iter().map(|h| h * w).collect(),
            elephant_bytes: self.elephant_bytes * w,
            mice_bytes: self.mice_bytes * w,
            elephant_mass: self.elephant_mass * w,
            mice_mass: self.mice_mass * w,
        }
    }

    /// Histogram normalised to a probability distribution (uniform when
    /// empty, so KL against it is well defined).
    pub fn normalized_hist(&self) -> Vec<f64> {
        let total: f64 = self.hist.iter().sum();
        if total <= 0.0 {
            return vec![1.0 / FSD_BINS as f64; FSD_BINS];
        }
        self.hist.iter().map(|h| h / total).collect()
    }

    /// Smoothed Kullback–Leibler divergence `KL(self ‖ prev)` between the
    /// normalised histograms. Add-ε smoothing keeps the value finite when
    /// a bin empties between intervals.
    pub fn kl_divergence(&self, prev: &Fsd) -> f64 {
        const EPS: f64 = 1e-4;
        let p = self.normalized_hist();
        let q = prev.normalized_hist();
        p.iter()
            .zip(&q)
            .map(|(&pi, &qi)| {
                let pi = pi + EPS;
                let qi = qi + EPS;
                pi * (pi / qi).ln()
            })
            .sum::<f64>()
            .max(0.0)
    }

    /// The `[mice, elephant]` flow-mass distribution (uniform when no
    /// flows were observed). This two-point distribution is what the
    /// controller's change detector compares across intervals: it is the
    /// tuner's actual decision variable (dominant flow type and µ) and,
    /// unlike the size histogram, it is stationary for a stable workload.
    pub fn share_distribution(&self) -> [f64; 2] {
        let m = self.flow_mass();
        if m <= 0.0 {
            [0.5, 0.5]
        } else {
            [self.mice_mass / m, self.elephant_mass / m]
        }
    }

    /// Smoothed KL divergence between the byte-share distributions of two
    /// snapshots (the quantity thresholded against θ).
    pub fn kl_shares(&self, prev: &Fsd) -> f64 {
        const EPS: f64 = 1e-4;
        let p = self.share_distribution();
        let q = prev.share_distribution();
        p.iter()
            .zip(&q)
            .map(|(&pi, &qi)| {
                let pi = pi + EPS;
                let qi = qi + EPS;
                pi * (pi / qi).ln()
            })
            .sum::<f64>()
            .max(0.0)
    }

    /// Histogram-intersection similarity with a ground-truth FSD, in
    /// `[0, 1]` (1 = identical). This is the "flow size distribution
    /// accuracy" metric of Figures 10(a)/11(a).
    pub fn similarity(&self, truth: &Fsd) -> f64 {
        let p = self.normalized_hist();
        let q = truth.normalized_hist();
        // Combine histogram similarity with elephant-share agreement, both
        // of which the tuner consumes.
        let hist_sim: f64 = p.iter().zip(&q).map(|(a, b)| a.min(*b)).sum();
        let share_sim = 1.0 - (self.elephant_share() - truth.elephant_share()).abs();
        0.5 * hist_sim + 0.5 * share_sim
    }

    /// Wire size of one snapshot upload (Table IV data-transfer
    /// accounting): the histogram plus the two byte shares as f32s.
    pub fn wire_size_bytes(&self) -> usize {
        FSD_BINS * 4 + 2 * 4
    }
}

/// Accumulates per-flow observations into an [`Fsd`].
#[derive(Debug, Clone, Default)]
pub struct FsdBuilder {
    fsd: Fsd,
}

impl FsdBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self { fsd: Fsd::empty() }
    }

    /// Add one flow of `size_bytes` whose elephant likelihood weight is
    /// `elephant_weight ∈ [0, 1]` (1 for E, `min(1, Φ/τ)` for PE, 0 for M).
    /// The flow's full size also weights the byte shares.
    pub fn add_flow(&mut self, size_bytes: u64, elephant_weight: f64) {
        self.add_flow_weighted(size_bytes, size_bytes, elephant_weight);
    }

    /// Add one flow whose *size bin* comes from `size_bytes` (bytes so
    /// far) but whose byte-share contribution is `share_bytes` — the
    /// monitor passes the flow's recent-window bytes here so the share
    /// distribution reflects current traffic rather than lifetime volume.
    pub fn add_flow_weighted(&mut self, size_bytes: u64, share_bytes: u64, elephant_weight: f64) {
        let w = elephant_weight.clamp(0.0, 1.0);
        let bin = if size_bytes <= 1 {
            0
        } else {
            (63 - size_bytes.leading_zeros() as usize).min(FSD_BINS - 1)
        };
        self.fsd.hist[bin] += 1.0;
        self.fsd.elephant_bytes += share_bytes as f64 * w;
        self.fsd.mice_bytes += share_bytes as f64 * (1.0 - w);
        self.fsd.elephant_mass += w;
        self.fsd.mice_mass += 1.0 - w;
    }

    /// Finish and return the snapshot.
    pub fn build(self) -> Fsd {
        self.fsd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn elephant_heavy() -> Fsd {
        let mut b = FsdBuilder::new();
        b.add_flow(10 * MB, 1.0);
        b.add_flow(20 * MB, 1.0);
        b.add_flow(4_000, 0.0);
        b.build()
    }

    fn mice_heavy() -> Fsd {
        // 500 mice × 8 KB = 4 MB of mice bytes vs one 1 MB elephant.
        let mut b = FsdBuilder::new();
        for _ in 0..500 {
            b.add_flow(8_000, 0.0);
        }
        b.add_flow(MB, 1.0);
        b.build()
    }

    #[test]
    fn empty_fsd_is_neutral() {
        let f = Fsd::empty();
        assert!(f.is_empty());
        assert_eq!(f.elephant_share(), 0.0);
        let (_, mu) = f.dominant();
        assert_eq!(mu, 0.5);
    }

    #[test]
    fn dominant_type_follows_flow_composition() {
        // Two elephant flows vs one mouse: elephants dominate by count.
        let (t, mu) = elephant_heavy().dominant();
        assert_eq!(t, FlowType::Elephant);
        assert!((mu - 2.0 / 3.0).abs() < 1e-9, "µ = {mu}");
        // 500 mice vs one elephant: overwhelmingly mice by count, even
        // though byte share is closer.
        let (t, mu) = mice_heavy().dominant();
        assert_eq!(t, FlowType::Mice);
        assert!(mu > 0.99, "µ = {mu}");
        assert!(mice_heavy().elephant_share() > 0.1, "bytes still split");
    }

    #[test]
    fn kl_of_identical_distributions_is_zero() {
        let f = elephant_heavy();
        assert!(f.kl_divergence(&f) < 1e-9);
    }

    #[test]
    fn kl_detects_workload_shift() {
        let e = elephant_heavy();
        let m = mice_heavy();
        let stable = e.kl_divergence(&e);
        let shift = m.kl_divergence(&e);
        assert!(shift > stable + 0.01, "shift {shift} vs stable {stable}");
    }

    #[test]
    fn kl_is_nonnegative_and_finite() {
        let pairs = [
            (Fsd::empty(), Fsd::empty()),
            (elephant_heavy(), Fsd::empty()),
            (Fsd::empty(), mice_heavy()),
            (elephant_heavy(), mice_heavy()),
        ];
        for (a, b) in pairs {
            let kl = a.kl_divergence(&b);
            assert!(kl >= 0.0 && kl.is_finite());
        }
    }

    #[test]
    fn merge_adds_mass_and_bytes() {
        let mut a = elephant_heavy();
        let b = mice_heavy();
        let bytes = a.total_bytes() + b.total_bytes();
        let mass = a.flow_mass() + b.flow_mass();
        a.merge(&b);
        assert!((a.total_bytes() - bytes).abs() < 1e-6);
        assert!((a.flow_mass() - mass).abs() < 1e-6);
    }

    #[test]
    fn merge_order_is_irrelevant() {
        let (x, y) = (elephant_heavy(), mice_heavy());
        let mut ab = x.clone();
        ab.merge(&y);
        let mut ba = y.clone();
        ba.merge(&x);
        assert!((ab.kl_divergence(&ba)).abs() < 1e-12);
        assert!((ab.elephant_share() - ba.elephant_share()).abs() < 1e-12);
    }

    #[test]
    fn pe_weight_splits_bytes() {
        let mut b = FsdBuilder::new();
        b.add_flow(MB, 0.25);
        let f = b.build();
        assert!((f.elephant_share() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn similarity_is_one_for_identical_and_lower_for_different() {
        let e = elephant_heavy();
        assert!((e.similarity(&e) - 1.0).abs() < 1e-9);
        let s = e.similarity(&mice_heavy());
        assert!(s < 0.7, "dissimilar distributions scored {s}");
    }

    #[test]
    fn normalized_hist_sums_to_one() {
        for f in [elephant_heavy(), mice_heavy(), Fsd::empty()] {
            let s: f64 = f.normalized_hist().iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn size_bins_are_logarithmic() {
        let mut b = FsdBuilder::new();
        b.add_flow(1024, 0.0); // bin 10
        b.add_flow(2048, 0.0); // bin 11
        let f = b.build();
        let h = f.normalized_hist();
        assert!((h[10] - 0.5).abs() < 1e-9);
        assert!((h[11] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn huge_flows_clamp_to_last_bin() {
        let mut b = FsdBuilder::new();
        b.add_flow(u64::MAX, 1.0);
        let f = b.build();
        assert!(f.normalized_hist()[FSD_BINS - 1] > 0.99);
    }
}
