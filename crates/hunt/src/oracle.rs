//! The oracle suite: machine-checkable definitions of "this run went
//! pathologically wrong", shared between the hunter and the experiment
//! harness.
//!
//! Detectors come in two layers. The *measures* at the top
//! ([`goodput_collapse`], [`pfc_storm`], [`jain_index`]) are pure
//! functions over per-interval signal slices — `exp_faults` consumes
//! them directly on closed-loop history, the hunter on raw-simulator
//! runs. The [`OracleReport`] below combines them (plus audit and
//! livelock evidence) into fired/score verdicts over a faulted run and
//! its fault-free twin.
//!
//! Scores are smooth in `[0, 1]` so the search has a gradient to climb
//! *before* an oracle fires; `fired` is the hard verdict a corpus case
//! replays against.

use std::ops::Range;

use serde::{Serialize, Value};

use crate::eval::RunMetrics;

/// Goodput-collapse measure: tail-mean goodput against a baseline mean.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CollapseMeasure {
    /// Mean goodput over the baseline window (bytes/sec).
    pub baseline: f64,
    /// Mean goodput over the last `tail_len` intervals (bytes/sec).
    pub tail: f64,
    /// `tail / max(baseline, 1)` — below 1 the run degraded, near 0 it
    /// collapsed.
    pub recovery_ratio: f64,
}

/// Compare tail goodput against a baseline window of the same series
/// (the fault-experiment's recovery check) or of a twin run's series
/// (the hunter's collapse oracle). Ranges are clamped to the series.
pub fn goodput_collapse(
    goodputs: &[f64],
    baseline: Range<usize>,
    tail_len: usize,
) -> CollapseMeasure {
    let baseline_slice =
        &goodputs[baseline.start.min(goodputs.len())..baseline.end.min(goodputs.len())];
    let tail_slice = &goodputs[goodputs.len().saturating_sub(tail_len)..];
    let baseline = mean(baseline_slice);
    let tail = mean(tail_slice);
    CollapseMeasure {
        baseline,
        tail,
        recovery_ratio: tail / baseline.max(1.0),
    }
}

/// PFC pause-storm measure over a per-interval pause-ratio series.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StormMeasure {
    /// Largest sliding-window mean pause ratio.
    pub peak_window_mean: f64,
    /// Number of intervals whose pause ratio exceeds the threshold.
    pub intervals_above: usize,
}

/// Slide a `window`-interval mean over the pause-ratio series. A pause
/// *storm* (as opposed to transient backpressure) is sustained: the
/// network-mean pause ratio stays high across a whole window, which on
/// a multi-port fabric means pauses propagated beyond a single queue.
pub fn pfc_storm(pause_ratios: &[f64], window: usize, threshold: f64) -> StormMeasure {
    let window = window.max(1);
    let mut peak = 0f64;
    if pause_ratios.len() >= window {
        for w in pause_ratios.windows(window) {
            peak = peak.max(mean(w));
        }
    } else {
        peak = mean(pause_ratios);
    }
    StormMeasure {
        peak_window_mean: peak,
        intervals_above: pause_ratios.iter().filter(|&&r| r > threshold).count(),
    }
}

/// Jain's fairness index over per-flow allocations: 1 is perfectly fair,
/// `1/n` is one flow taking everything. Empty or all-zero input is
/// vacuously fair (1.0).
pub fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if n == 0.0 || sumsq == 0.0 {
        1.0
    } else {
        (sum * sum) / (n * sumsq)
    }
}

/// Control-plane divergence measure, produced by the evaluator's
/// closed-loop probe when (and only when) a candidate schedules
/// control-plane faults. Both protocol variants run the same topology,
/// workload, seed and fault plan; `converged` means the loop reached
/// quiescence (no pending dispatch, both channel lanes drained) with the
/// fabric's deployed parameters equal to the controller's belief.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CtrlMeasure {
    /// The hardened (epoch-stamped, retried, snapshot-restored) protocol
    /// converged.
    pub hardened_converged: bool,
    /// The naive (apply-everything-in-arrival-order) protocol converged.
    pub naive_converged: bool,
    /// Control messages the hardened run's channels lost, both lanes.
    pub msgs_lost: u64,
    /// Dispatch retries the hardened run spent recovering.
    pub retries: u64,
    /// Controller crashes replayed against the hardened run.
    pub crashes: u64,
    /// Lost fraction of sent control messages, `[0, 1]` — the smooth
    /// stress signal the search climbs before divergence manifests.
    pub loss_ratio: f64,
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// The pathology classes the hunter can confirm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum OracleKind {
    /// Tail goodput collapsed relative to the fault-free twin run.
    GoodputCollapse,
    /// Sustained network-wide PFC pause storm.
    PfcStorm,
    /// Per-flow unfairness or outright starvation in the tail window.
    Unfairness,
    /// `paraleon-audit` invariant violations during the run.
    AuditViolation,
    /// The run churned events without delivering (or blew its
    /// deterministic event budget before its scheduled end).
    Livelock,
    /// Under the same control-plane faults, the naive (epoch-less)
    /// dispatch protocol left the fabric on stale parameters at
    /// quiescence while the hardened epoch/retry/snapshot protocol
    /// converged. Opt-in: not part of [`ALL_ORACLES`] — default hunts
    /// and pre-existing corpus cases never judge it — target it with
    /// `--oracle ctrl_divergence`.
    CtrlDivergence,
    /// One fleet tenant's backpressure (saturated upload queue,
    /// exhausted token bucket) degraded a *neighbour* tenant's tuning —
    /// a violation of the fleet scheduler's isolation contract.
    /// Opt-in stub: not part of [`ALL_ORACLES`] and not yet judged by
    /// any probe — reserved so corpus cases and `--oracle
    /// tenant_interference` parse before the fleet probe lands.
    TenantInterference,
}

/// The always-judged oracle kinds, in report order. The opt-in
/// [`OracleKind::CtrlDivergence`] is deliberately absent: it needs the
/// (closed-loop, twice-as-expensive) control-plane probe, which only
/// runs for candidates that schedule control-plane faults.
pub const ALL_ORACLES: [OracleKind; 5] = [
    OracleKind::GoodputCollapse,
    OracleKind::PfcStorm,
    OracleKind::Unfairness,
    OracleKind::AuditViolation,
    OracleKind::Livelock,
];

impl OracleKind {
    /// CLI / corpus-file name.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::GoodputCollapse => "goodput_collapse",
            OracleKind::PfcStorm => "pfc_storm",
            OracleKind::Unfairness => "unfairness",
            OracleKind::AuditViolation => "audit_violation",
            OracleKind::Livelock => "livelock",
            OracleKind::CtrlDivergence => "ctrl_divergence",
            OracleKind::TenantInterference => "tenant_interference",
        }
    }

    /// Inverse of [`OracleKind::name`] (also accepts the enum spelling).
    /// Resolves the opt-in kinds too, so `--oracle ctrl_divergence` and
    /// committed ctrl cases parse even though default hunts skip them.
    pub fn from_name(s: &str) -> Option<Self> {
        ALL_ORACLES
            .into_iter()
            .chain([OracleKind::CtrlDivergence, OracleKind::TenantInterference])
            .find(|k| k.name() == s || format!("{k:?}") == s)
    }
}

/// Thresholds the verdicts are judged against. Committed with each
/// corpus case so replays judge by the thresholds the case was found
/// under, even if the defaults later move.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OracleConfig {
    /// Collapse fires when `tail / twin_tail` drops below this.
    pub collapse_ratio: f64,
    /// ... and the twin's tail goodput exceeds this (Gbps): a fabric
    /// idling in both runs is not a collapse.
    pub collapse_floor_gbps: f64,
    /// Storm sliding-window length (intervals).
    pub storm_window: usize,
    /// Storm fires when the peak window-mean pause ratio reaches this.
    pub storm_threshold: f64,
    /// Unfairness fires when tail Jain index drops below this.
    pub jain_threshold: f64,
    /// Fairness needs at least this many eligible flows to judge.
    pub min_fairness_flows: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            collapse_ratio: 0.5,
            collapse_floor_gbps: 1.0,
            storm_window: 5,
            storm_threshold: 0.25,
            jain_threshold: 0.5,
            min_fairness_flows: 2,
        }
    }
}

impl OracleConfig {
    /// Reconstruct from the [`Serialize`] representation.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let float = |name: &str| {
            v.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("OracleConfig: missing `{name}`"))
        };
        let uint = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("OracleConfig: missing `{name}`"))
        };
        Ok(Self {
            collapse_ratio: float("collapse_ratio")?,
            collapse_floor_gbps: float("collapse_floor_gbps")?,
            storm_window: uint("storm_window")? as usize,
            storm_threshold: float("storm_threshold")?,
            jain_threshold: float("jain_threshold")?,
            min_fairness_flows: uint("min_fairness_flows")? as usize,
        })
    }
}

/// One oracle's verdict on a run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OracleOutcome {
    /// Which oracle.
    pub kind: OracleKind,
    /// Hard verdict: the pathology is confirmed.
    pub fired: bool,
    /// Smooth signal in `[0, 1]` the search climbs.
    pub score: f64,
}

/// The full oracle evaluation of one faulted run + twin pair. Every
/// field is derived deterministically from the two runs, so a replay of
/// a corpus case must reproduce this struct *byte for byte* in JSON.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Per-oracle verdicts: [`ALL_ORACLES`] order, plus a trailing
    /// [`OracleKind::CtrlDivergence`] entry when the probe ran.
    pub outcomes: Vec<OracleOutcome>,
    /// Faulted run tail goodput, Gbps.
    pub tail_goodput_gbps: f64,
    /// Twin run tail goodput, Gbps.
    pub twin_tail_goodput_gbps: f64,
    /// `tail / twin_tail` (1.0 when the twin idles).
    pub collapse_ratio: f64,
    /// Peak sliding-window mean pause ratio of the faulted run.
    pub peak_pause_window: f64,
    /// Tail Jain fairness index over eligible flows (1.0 if too few).
    pub jain_tail: f64,
    /// Eligible flows that moved zero bytes in the tail while at least
    /// one other made progress.
    pub starved_flows: u64,
    /// Flows judged for fairness.
    pub eligible_flows: u64,
    /// Audit invariant violations drained after the faulted run.
    pub audit_violations: u64,
    /// Events the faulted run processed.
    pub events_processed: u64,
    /// Whether the faulted run blew its event budget before its
    /// scheduled end.
    pub aborted_early: bool,
    /// Intervals the faulted run actually completed.
    pub intervals_run: u64,
    /// Control-plane probe measure — present only for candidates that
    /// schedule control-plane faults.
    pub ctrl: Option<CtrlMeasure>,
}

// Hand-written (mirroring the derive's field-ordered object) so that
// `ctrl` is *omitted* rather than serialized as `null` when absent:
// reports of ctrl-free candidates — including every corpus case
// committed before the control-plane oracle existed — keep their exact
// pre-existing bytes, which the replay gate compares verbatim.
impl Serialize for OracleReport {
    fn serialize_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("outcomes".into(), self.outcomes.serialize_value()),
            (
                "tail_goodput_gbps".into(),
                self.tail_goodput_gbps.serialize_value(),
            ),
            (
                "twin_tail_goodput_gbps".into(),
                self.twin_tail_goodput_gbps.serialize_value(),
            ),
            (
                "collapse_ratio".into(),
                self.collapse_ratio.serialize_value(),
            ),
            (
                "peak_pause_window".into(),
                self.peak_pause_window.serialize_value(),
            ),
            ("jain_tail".into(), self.jain_tail.serialize_value()),
            ("starved_flows".into(), self.starved_flows.serialize_value()),
            (
                "eligible_flows".into(),
                self.eligible_flows.serialize_value(),
            ),
            (
                "audit_violations".into(),
                self.audit_violations.serialize_value(),
            ),
            (
                "events_processed".into(),
                self.events_processed.serialize_value(),
            ),
            ("aborted_early".into(), self.aborted_early.serialize_value()),
            ("intervals_run".into(), self.intervals_run.serialize_value()),
        ];
        if let Some(m) = &self.ctrl {
            fields.push(("ctrl".into(), m.serialize_value()));
        }
        Value::Object(fields)
    }
}

impl OracleReport {
    /// The verdict for `kind`, if this report judged it — the opt-in
    /// [`OracleKind::CtrlDivergence`] is only present when the probe
    /// ran.
    pub fn outcome(&self, kind: OracleKind) -> Option<&OracleOutcome> {
        self.outcomes.iter().find(|o| o.kind == kind)
    }

    /// Whether `kind` confirmed its pathology (false when unjudged).
    pub fn fired(&self, kind: OracleKind) -> bool {
        self.outcome(kind).is_some_and(|o| o.fired)
    }

    /// Kinds that fired.
    pub fn fired_kinds(&self) -> Vec<OracleKind> {
        self.outcomes
            .iter()
            .filter(|o| o.fired)
            .map(|o| o.kind)
            .collect()
    }

    /// The score the search climbs for `kind` (0 when unjudged, so a
    /// ctrl-divergence lane breeds toward candidates that at least carry
    /// control-plane faults).
    pub fn score(&self, kind: OracleKind) -> f64 {
        self.outcome(kind).map_or(0.0, |o| o.score)
    }
}

/// Convert bytes/sec to Gbps.
fn to_gbps(bytes_per_sec: f64) -> f64 {
    bytes_per_sec * 8.0 / 1e9
}

/// Judge a faulted run against its fault-free twin.
///
/// `audit_violations` is whatever the evaluator drained from the audit
/// registry after the faulted run (always 0 when the `audit` feature is
/// compiled out — the oracle is then inert, never falsely negative).
pub fn judge(
    cfg: &OracleConfig,
    run: &RunMetrics,
    twin: &RunMetrics,
    audit_violations: u64,
    ctrl: Option<CtrlMeasure>,
) -> OracleReport {
    let tail_len = run.tail_len;
    // --- Goodput collapse vs the twin. ---
    let tail = goodput_collapse(&run.goodput, 0..0, tail_len).tail;
    let twin_tail = goodput_collapse(&twin.goodput, 0..0, tail_len).tail;
    let tail_gbps = to_gbps(tail);
    let twin_gbps = to_gbps(twin_tail);
    let meaningful_twin = twin_gbps >= cfg.collapse_floor_gbps;
    let ratio = if meaningful_twin {
        tail / twin_tail.max(1.0)
    } else {
        1.0
    };
    let collapse_fired = meaningful_twin && ratio < cfg.collapse_ratio;
    let collapse_score = if meaningful_twin {
        (1.0 - ratio).clamp(0.0, 1.0)
    } else {
        0.0
    };

    // --- PFC pause storm. ---
    let storm = pfc_storm(&run.pause_ratio, cfg.storm_window, cfg.storm_threshold);
    let storm_fired = storm.peak_window_mean >= cfg.storm_threshold;
    let storm_score = storm.peak_window_mean.clamp(0.0, 1.0);

    // --- Unfairness / starvation over the tail window. ---
    let eligible = &run.eligible_tail_bytes;
    let (jain, starved) = if eligible.len() >= cfg.min_fairness_flows {
        let bytes: Vec<f64> = eligible.iter().map(|&(_, b)| b as f64).collect();
        let max = bytes.iter().cloned().fold(0f64, f64::max);
        let starved = if max > 0.0 {
            bytes.iter().filter(|&&b| b == 0.0).count() as u64
        } else {
            0
        };
        (jain_index(&bytes), starved)
    } else {
        (1.0, 0)
    };
    let unfair_fired = jain < cfg.jain_threshold || starved > 0;
    let unfair_score = (1.0 - jain)
        .clamp(0.0, 1.0)
        .max(if starved > 0 { 0.9 } else { 0.0 });

    // --- Audit invariant violations. ---
    let audit_fired = audit_violations > 0;
    let audit_score = (audit_violations as f64 / 5.0).clamp(0.0, 1.0);

    // --- Livelock: budget blown, or tail churn with zero delivery. ---
    let tail_start = run.bytes_delivered.len().saturating_sub(tail_len);
    let tail_delivered: u64 = run.bytes_delivered[tail_start..].iter().sum();
    let tail_churn: u64 = run.cnps[tail_start..].iter().sum::<u64>()
        + run.pfc_events[tail_start..].iter().sum::<u64>();
    let starved_fabric =
        tail_delivered == 0 && run.active_flows_end > 0 && tail_churn > 0 && tail_start > 0;
    let livelock_fired = run.aborted_early || starved_fabric;
    let zero_frac = if run.bytes_delivered.is_empty() {
        0.0
    } else {
        run.bytes_delivered[tail_start..]
            .iter()
            .filter(|&&b| b == 0)
            .count() as f64
            / run.bytes_delivered[tail_start..].len().max(1) as f64
    };
    let livelock_score = if livelock_fired { 1.0 } else { 0.8 * zero_frac };

    let mut outcomes = vec![
        OracleOutcome {
            kind: OracleKind::GoodputCollapse,
            fired: collapse_fired,
            score: collapse_score,
        },
        OracleOutcome {
            kind: OracleKind::PfcStorm,
            fired: storm_fired,
            score: storm_score,
        },
        OracleOutcome {
            kind: OracleKind::Unfairness,
            fired: unfair_fired,
            score: unfair_score,
        },
        OracleOutcome {
            kind: OracleKind::AuditViolation,
            fired: audit_fired,
            score: audit_score,
        },
        OracleOutcome {
            kind: OracleKind::Livelock,
            fired: livelock_fired,
            score: livelock_score,
        },
    ];

    // --- Control-plane divergence (probe-gated, opt-in). ---
    if let Some(m) = ctrl {
        // The finding is a *differential*: the hardened protocol must
        // survive the exact faults that strand the naive one — a
        // scenario breaking both is channel vandalism, not a protocol
        // pathology.
        let fired = m.hardened_converged && !m.naive_converged;
        let stress = 0.6 * m.loss_ratio
            + 0.2 * (m.retries.min(5) as f64 / 5.0)
            + 0.2 * if m.naive_converged { 0.0 } else { 1.0 };
        let score = if fired {
            1.0
        } else {
            (0.9 * stress).clamp(0.0, 0.9)
        };
        outcomes.push(OracleOutcome {
            kind: OracleKind::CtrlDivergence,
            fired,
            score,
        });
    }
    OracleReport {
        outcomes,
        tail_goodput_gbps: tail_gbps,
        twin_tail_goodput_gbps: twin_gbps,
        collapse_ratio: ratio,
        peak_pause_window: storm.peak_window_mean,
        jain_tail: jain,
        starved_flows: starved,
        eligible_flows: eligible.len() as u64,
        audit_violations,
        events_processed: run.events_processed,
        aborted_early: run.aborted_early,
        intervals_run: run.intervals_run,
        ctrl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapse_measure_matches_hand_math() {
        let g = [10.0, 10.0, 10.0, 10.0, 2.0, 2.0];
        let m = goodput_collapse(&g, 0..4, 2);
        assert_eq!(m.baseline, 10.0);
        assert_eq!(m.tail, 2.0);
        assert!((m.recovery_ratio - 0.2).abs() < 1e-12);
    }

    #[test]
    fn storm_peak_is_worst_window() {
        let p = [0.0, 0.1, 0.9, 0.9, 0.9, 0.0];
        let m = pfc_storm(&p, 3, 0.5);
        assert!((m.peak_window_mean - 0.9).abs() < 1e-12);
        assert_eq!(m.intervals_above, 3);
        // Short series fall back to the overall mean.
        assert!(pfc_storm(&p[..2], 3, 0.5).peak_window_mean < 0.1);
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);
        let skew = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12);
    }

    #[test]
    fn oracle_names_round_trip() {
        for k in ALL_ORACLES {
            assert_eq!(OracleKind::from_name(k.name()), Some(k));
        }
        assert_eq!(
            OracleKind::from_name("PfcStorm"),
            Some(OracleKind::PfcStorm)
        );
        // Opt-in kinds resolve even though default hunts skip them.
        assert_eq!(
            OracleKind::from_name("ctrl_divergence"),
            Some(OracleKind::CtrlDivergence)
        );
        assert!(!ALL_ORACLES.contains(&OracleKind::CtrlDivergence));
        assert_eq!(
            OracleKind::from_name("tenant_interference"),
            Some(OracleKind::TenantInterference)
        );
        assert!(!ALL_ORACLES.contains(&OracleKind::TenantInterference));
        assert_eq!(OracleKind::from_name("nope"), None);
    }

    fn flat_metrics() -> crate::eval::RunMetrics {
        crate::eval::RunMetrics {
            goodput: vec![1e9; 8],
            pause_ratio: vec![0.0; 8],
            bytes_delivered: vec![1_000_000; 8],
            cnps: vec![0; 8],
            pfc_events: vec![0; 8],
            eligible_tail_bytes: vec![(0, 500_000), (1, 500_000)],
            active_flows_end: 0,
            aborted_early: false,
            events_processed: 1_000,
            intervals_run: 8,
            tail_len: 3,
        }
    }

    #[test]
    fn ctrl_outcome_is_appended_only_when_the_probe_ran() {
        let cfg = OracleConfig::default();
        let (run, twin) = (flat_metrics(), flat_metrics());
        let plain = judge(&cfg, &run, &twin, 0, None);
        assert_eq!(plain.outcomes.len(), ALL_ORACLES.len());
        assert!(plain.outcome(OracleKind::CtrlDivergence).is_none());
        assert!(!plain.fired(OracleKind::CtrlDivergence));
        assert_eq!(plain.score(OracleKind::CtrlDivergence), 0.0);
        // A ctrl-free report must serialize without any `ctrl` key so
        // pre-existing corpus bytes are preserved verbatim.
        assert!(!serde_json::to_string(&plain).unwrap().contains("ctrl"));

        let diverged = judge(
            &cfg,
            &run,
            &twin,
            0,
            Some(CtrlMeasure {
                hardened_converged: true,
                naive_converged: false,
                msgs_lost: 7,
                retries: 2,
                crashes: 0,
                loss_ratio: 0.35,
            }),
        );
        assert_eq!(diverged.outcomes.len(), ALL_ORACLES.len() + 1);
        assert!(diverged.fired(OracleKind::CtrlDivergence));
        assert_eq!(diverged.score(OracleKind::CtrlDivergence), 1.0);
        assert!(serde_json::to_string(&diverged)
            .unwrap()
            .contains("\"ctrl\""));
    }

    #[test]
    fn ctrl_divergence_is_differential() {
        let cfg = OracleConfig::default();
        let (run, twin) = (flat_metrics(), flat_metrics());
        // Both protocols stranded: vandalism, not a protocol pathology —
        // but the stress score still climbs.
        let both_dead = judge(
            &cfg,
            &run,
            &twin,
            0,
            Some(CtrlMeasure {
                hardened_converged: false,
                naive_converged: false,
                msgs_lost: 40,
                retries: 9,
                crashes: 1,
                loss_ratio: 0.8,
            }),
        );
        assert!(!both_dead.fired(OracleKind::CtrlDivergence));
        let s = both_dead.score(OracleKind::CtrlDivergence);
        assert!(s > 0.0 && s <= 0.9, "stress score in (0, 0.9]: {s}");
    }
}
