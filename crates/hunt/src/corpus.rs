//! The regression corpus: every confirmed, minimized pathology is
//! serialized as one JSON file and committed. `hunt corpus replay`
//! (and the `corpus_replays` integration test) re-runs each case and
//! demands two things:
//!
//! 1. the recorded oracle still *fires* — the pathology reproduces;
//! 2. the fresh [`OracleReport`] re-serializes **byte-identically** to
//!    the committed one — the simulator's behavior on this scenario has
//!    not drifted at all, down to every goodput digit.
//!
//! The second check is deliberately brutal: it turns each found anomaly
//! into a change-detector for the whole stack (simulator, DCQCN state
//! machines, fault injection, metrics), the same way the committed
//! `results/*.json` gate the paper experiments.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Serialize, Value};

use crate::eval::{evaluate, EvalConfig};
use crate::genome::HuntPoint;
use crate::minimize::MinimizeStats;
use crate::oracle::{OracleConfig, OracleKind};
use crate::search::Finding;

/// One committed repro: the genome, the configs it was judged under,
/// and the expected oracle report.
#[derive(Debug, Clone, Serialize)]
pub struct HuntCase {
    /// File stem / display name, e.g. `pfc_storm_seed42`.
    pub name: String,
    /// The oracle this case regression-tests.
    pub kind: OracleKind,
    /// Run length and budgets the case was found under.
    pub eval: EvalConfig,
    /// Oracle thresholds the case was found under.
    pub oracles: OracleConfig,
    /// Minimization accounting (absent for hand-written cases).
    pub minimize: Option<MinimizeStats>,
    /// The repro genome.
    pub point: HuntPoint,
    /// Expected oracle report, kept as the raw serialized tree so the
    /// replay comparison is over bytes, not re-interpreted floats.
    pub report: Value,
}

impl HuntCase {
    /// Package a search [`Finding`] for the corpus.
    pub fn from_finding(
        name: impl Into<String>,
        cfg_eval: &EvalConfig,
        cfg_oracles: &OracleConfig,
        f: &Finding,
    ) -> Self {
        Self {
            name: name.into(),
            kind: f.kind,
            eval: *cfg_eval,
            oracles: *cfg_oracles,
            minimize: f.minimize,
            point: f.point.clone(),
            report: f.report.serialize_value(),
        }
    }

    /// Reconstruct from the [`Serialize`] representation.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| format!("HuntCase: missing `{name}`"))
        };
        let kind_name = field("kind")?
            .as_str()
            .ok_or("HuntCase: `kind` is not a string")?;
        Ok(Self {
            name: field("name")?
                .as_str()
                .ok_or("HuntCase: `name` is not a string")?
                .to_string(),
            kind: OracleKind::from_name(kind_name)
                .ok_or_else(|| format!("HuntCase: unknown oracle `{kind_name}`"))?,
            eval: EvalConfig::from_value(field("eval")?)?,
            oracles: OracleConfig::from_value(field("oracles")?)?,
            minimize: match v.get("minimize") {
                None | Some(Value::Null) => None,
                Some(m) => Some(MinimizeStats::from_value(m)?),
            },
            point: HuntPoint::from_value(field("point")?)?,
            report: field("report")?.clone(),
        })
    }

    /// Parse a case file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let v =
            serde_json::from_str_value(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_value(&v)
    }

    /// Write the case as pretty JSON (plus trailing newline, so the
    /// files are diff-friendly) into `dir`, named `<name>.json`.
    pub fn write(&self, dir: &Path) -> Result<PathBuf, String> {
        fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = dir.join(format!("{}.json", self.name));
        let json = serde_json::to_string_pretty(self).map_err(|e| e.to_string())?;
        let mut f = fs::File::create(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        writeln!(f, "{json}").map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(path)
    }
}

/// The verdict of replaying one case.
#[derive(Debug, Clone)]
pub struct Replay {
    /// The case's oracle fired again.
    pub fired: bool,
    /// The fresh report re-serialized byte-identically to the committed
    /// one.
    pub identical: bool,
    /// Fresh report, compact JSON.
    pub got: String,
    /// Committed report, compact JSON.
    pub want: String,
}

impl Replay {
    /// A replay passes when the pathology reproduces *and* nothing about
    /// its measured signature moved.
    pub fn passed(&self) -> bool {
        self.fired && self.identical
    }
}

/// Re-run a case and compare against its committed report.
pub fn replay(case: &HuntCase) -> Result<Replay, String> {
    let ev = evaluate(&case.eval, &case.oracles, &case.point)?;
    let got = serde_json::to_string(&ev.report).map_err(|e| e.to_string())?;
    let want = serde_json::to_string(&case.report).map_err(|e| e.to_string())?;
    Ok(Replay {
        fired: ev.report.fired(case.kind),
        identical: got == want,
        got,
        want,
    })
}

/// The committed corpus directory: `$HUNT_CORPUS_DIR` when set (the CI
/// smoke job points scratch hunts elsewhere), otherwise `corpus/` at the
/// repository root.
pub fn corpus_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("HUNT_CORPUS_DIR") {
        return PathBuf::from(dir);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

/// Load every `*.json` case in `dir`, sorted by file name for
/// deterministic iteration. A missing directory is an empty corpus.
pub fn load_dir(dir: &Path) -> Result<Vec<HuntCase>, String> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    paths.sort();
    paths.iter().map(|p| HuntCase::load(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraleon_dcqcn::DcqcnParams;
    use paraleon_netsim::{ClosSpec, FaultPlan, TopoSpec, MILLI};

    fn case() -> HuntCase {
        let mut faults = FaultPlan::new(1);
        faults.pfc_storm(0, MILLI, 3 * MILLI);
        HuntCase {
            name: "unit_case".into(),
            kind: OracleKind::PfcStorm,
            eval: EvalConfig {
                intervals: 4,
                lambda_mi: MILLI,
                event_budget: 10_000_000,
                tail: 2,
            },
            oracles: OracleConfig::default(),
            minimize: None,
            point: HuntPoint {
                topo: TopoSpec::TwoTier(ClosSpec {
                    n_tor: 2,
                    hosts_per_tor: 2,
                    n_leaf: 1,
                    host_gbps: 100.0,
                    uplink_gbps: 100.0,
                    delay_ns: 2_000,
                }),
                workload: vec![crate::genome::FlowSpec {
                    src: 2,
                    dst: 0,
                    bytes: 500_000,
                    start: 0,
                    count: 4,
                    gap: MILLI,
                }],
                collective: None,
                faults,
                params: DcqcnParams::nvidia_default(),
                seed: 1,
            },
            report: Value::Null,
        }
    }

    #[test]
    fn case_files_round_trip() {
        let dir = std::env::temp_dir().join("paraleon_hunt_corpus_test");
        let _ = fs::remove_dir_all(&dir);
        let mut c = case();
        // Commit the real report so the round-trip covers it too.
        c.report = evaluate(&c.eval, &c.oracles, &c.point)
            .expect("case evaluates")
            .report
            .serialize_value();
        let path = c.write(&dir).expect("writes");
        let back = HuntCase::load(&path).expect("loads");
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&c).unwrap(),
            "case JSON must round-trip byte-identically"
        );
        let loaded = load_dir(&dir).expect("dir loads");
        assert_eq!(loaded.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_detects_both_failure_modes() {
        let mut c = case();
        let ev = evaluate(&c.eval, &c.oracles, &c.point).expect("evaluates");
        c.report = ev.report.serialize_value();
        let ok = replay(&c).expect("replays");
        assert!(ok.identical, "self-replay must be byte-identical");

        // Tamper with the committed report: replay must flag the drift.
        c.report = Value::Object(vec![("outcomes".into(), Value::Array(vec![]))]);
        let bad = replay(&c).expect("replays");
        assert!(!bad.identical);
        assert!(!bad.passed());
    }

    #[test]
    fn missing_corpus_dir_is_empty() {
        let cases = load_dir(Path::new("/nonexistent/paraleon")).expect("empty");
        assert!(cases.is_empty());
    }
}
