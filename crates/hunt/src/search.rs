//! The hunt loop: seeded (µ+λ)-style guided search over the genome.
//!
//! Each generation builds a batch of candidates — every targeted oracle
//! kind gets slots, each mutated from that kind's current elite (or a
//! fresh seed point while none exists) — and fans their evaluations
//! across worker threads with [`crate::sweep::run`]. Because the batch
//! is assembled on the coordinator thread from one seeded RNG and sweep
//! results come back in job order, a hunt is a pure function of
//! [`SearchConfig`]: `--threads 8` finds byte-for-byte what `--serial`
//! finds, only sooner.
//!
//! Selection is per-kind elitism on the oracle's smooth score, which
//! gives the search a gradient to climb before anything fires (a 40%
//! goodput dip breeds toward a 60% collapse). The best *fired* point per
//! kind is kept as that kind's finding and optionally delta-debugged
//! down to a minimal repro.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::eval::{evaluate, EvalConfig, Evaluation};
use crate::genome::{GenomeCaps, HuntPoint};
use crate::minimize::{minimize, MinimizeStats};
use crate::mutate::{mutate, seed_point};
use crate::oracle::{OracleConfig, OracleKind, OracleReport, ALL_ORACLES};
use crate::sweep;

/// Everything that defines one hunt. A hunt is deterministic in this
/// struct: same config, same findings, any thread count.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Total candidate evaluations to spend.
    pub budget: u64,
    /// Search RNG seed.
    pub seed: u64,
    /// Worker threads for fanning evaluations.
    pub threads: usize,
    /// Candidates per generation.
    pub batch: usize,
    /// Per-candidate run length and budgets.
    pub eval: EvalConfig,
    /// Oracle thresholds.
    pub oracles: OracleConfig,
    /// Genome bounds for mutation.
    pub caps: GenomeCaps,
    /// Which pathology classes to hunt (empty means all).
    pub targets: Vec<OracleKind>,
    /// Delta-debug each finding down to a minimal repro.
    pub minimize: bool,
    /// Trial budget per minimization.
    pub minimize_trials: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        let eval = EvalConfig::default();
        let caps = GenomeCaps {
            // Faults scheduled beyond the run's end would be dead genes;
            // keep mutation inside the observed horizon.
            horizon: eval.intervals * eval.lambda_mi,
            ..GenomeCaps::default()
        };
        Self {
            budget: 64,
            seed: 42,
            threads: 1,
            batch: 16,
            eval,
            oracles: OracleConfig::default(),
            caps,
            targets: ALL_ORACLES.to_vec(),
            minimize: true,
            minimize_trials: 400,
        }
    }
}

/// One confirmed, (optionally) minimized pathology.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which oracle confirmed it.
    pub kind: OracleKind,
    /// The repro genome (minimized when the hunt minimizes).
    pub point: HuntPoint,
    /// The oracle report of `point` — re-judged after minimization, so
    /// it always describes the committed genome.
    pub report: OracleReport,
    /// The score at which the un-minimized ancestor was selected.
    pub found_score: f64,
    /// Evaluations spent when the ancestor first fired.
    pub found_at_eval: u64,
    /// Minimization accounting, when it ran.
    pub minimize: Option<MinimizeStats>,
}

/// Aggregate result of one hunt.
#[derive(Debug, Clone)]
pub struct HuntResult {
    /// Best confirmed finding per fired kind, in [`ALL_ORACLES`] order.
    pub findings: Vec<Finding>,
    /// Evaluations actually spent in the search loop (minimization
    /// trials are accounted separately, inside each finding).
    pub evals: u64,
    /// Generations run.
    pub generations: u64,
}

/// Per-kind search state.
struct Lane {
    kind: OracleKind,
    /// Highest-scoring point so far (fired or not) — the breeding elite.
    elite: Option<(HuntPoint, f64)>,
    /// Highest-scoring *fired* point so far.
    fired: Option<(HuntPoint, OracleReport, f64, u64)>,
}

/// Run the hunt.
pub fn hunt(cfg: &SearchConfig) -> HuntResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let targets = if cfg.targets.is_empty() {
        ALL_ORACLES.to_vec()
    } else {
        cfg.targets.clone()
    };
    let mut lanes: Vec<Lane> = targets
        .iter()
        .map(|&kind| Lane {
            kind,
            elite: None,
            fired: None,
        })
        .collect();

    let mut evals = 0u64;
    let mut generations = 0u64;
    let mut seen = std::collections::HashSet::new();

    while evals < cfg.budget {
        let want = (cfg.budget - evals).min(cfg.batch.max(1) as u64) as usize;
        // Assemble the generation on the coordinator thread: lane
        // round-robin, mutate from the lane elite once one exists.
        let mut batch: Vec<(usize, HuntPoint)> = Vec::with_capacity(want);
        let mut attempts = 0;
        while batch.len() < want && attempts < want * 10 {
            attempts += 1;
            let li = (batch.len() + attempts) % lanes.len();
            let lane = &lanes[li];
            let cand = match &lane.elite {
                Some((elite, _)) => mutate(elite, lane.kind, &cfg.caps, &mut rng),
                None => {
                    let p = seed_point(&cfg.caps, &mut rng);
                    mutate(&p, lane.kind, &cfg.caps, &mut rng)
                }
            };
            if seen.insert(cand.key()) {
                batch.push((li, cand));
            }
        }
        if batch.is_empty() {
            break;
        }

        let eval_cfg = cfg.eval;
        let oracle_cfg = cfg.oracles;
        let jobs: Vec<_> = batch
            .iter()
            .map(|(_, p)| {
                let p = p.clone();
                move || evaluate(&eval_cfg, &oracle_cfg, &p)
            })
            .collect();
        let results: Vec<Result<Evaluation, String>> = sweep::run(cfg.threads, jobs);

        for ((li, point), result) in batch.into_iter().zip(results) {
            evals += 1;
            let Ok(ev) = result else { continue };
            let lane = &mut lanes[li];
            let score = ev.report.score(lane.kind);
            if lane.elite.as_ref().is_none_or(|(_, s)| score > *s) {
                lane.elite = Some((point.clone(), score));
            }
            if ev.report.fired(lane.kind)
                && lane.fired.as_ref().is_none_or(|(_, _, s, _)| score > *s)
            {
                lane.fired = Some((point, ev.report, score, evals));
            }
        }
        generations += 1;
    }

    let mut findings = Vec::new();
    for lane in lanes {
        let Some((point, report, found_score, found_at_eval)) = lane.fired else {
            continue;
        };
        let (point, report, stats) = if cfg.minimize {
            let (small, stats) = minimize(
                &point,
                lane.kind,
                &cfg.eval,
                &cfg.oracles,
                cfg.minimize_trials,
            );
            let rejudged = evaluate(&cfg.eval, &cfg.oracles, &small)
                .expect("minimized point evaluates")
                .report;
            (small, rejudged, Some(stats))
        } else {
            (point, report, None)
        };
        findings.push(Finding {
            kind: lane.kind,
            point,
            report,
            found_score,
            found_at_eval,
            minimize: stats,
        });
    }
    HuntResult {
        findings,
        evals,
        generations,
    }
}

/// Compact JSON summary of a hunt, for the CLI and logs.
#[derive(Debug, Clone, Serialize)]
pub struct HuntSummary {
    /// Evaluations spent.
    pub evals: u64,
    /// Generations run.
    pub generations: u64,
    /// Fired oracle names.
    pub fired: Vec<String>,
}

impl HuntResult {
    /// Summarize for printing.
    pub fn summary(&self) -> HuntSummary {
        HuntSummary {
            evals: self.evals,
            generations: self.generations,
            fired: self
                .findings
                .iter()
                .map(|f| f.kind.name().to_string())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SearchConfig {
        SearchConfig {
            budget: 6,
            seed: 1,
            threads: 2,
            batch: 3,
            eval: EvalConfig {
                intervals: 4,
                lambda_mi: paraleon_netsim::MILLI,
                event_budget: 5_000_000,
                tail: 2,
            },
            minimize: false,
            ..SearchConfig::default()
        }
    }

    #[test]
    fn hunt_is_deterministic_across_thread_counts() {
        let serial = hunt(&SearchConfig {
            threads: 1,
            ..tiny_cfg()
        });
        let parallel = hunt(&SearchConfig {
            threads: 4,
            ..tiny_cfg()
        });
        assert_eq!(serial.evals, parallel.evals);
        assert_eq!(serial.findings.len(), parallel.findings.len());
        for (a, b) in serial.findings.iter().zip(&parallel.findings) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.point.key(), b.point.key());
            assert_eq!(
                serde_json::to_string(&a.report).unwrap(),
                serde_json::to_string(&b.report).unwrap()
            );
        }
    }

    #[test]
    fn hunt_respects_its_budget() {
        let r = hunt(&tiny_cfg());
        assert!(r.evals <= 6);
        assert!(r.generations >= 1);
    }
}
