//! Parallel sweep runner (re-exported by `paraleon-bench` for the
//! experiment binaries; the hunter uses it to fan candidate evaluation).
//!
//! The experiment binaries and the hunter's evaluation batches are
//! embarrassingly parallel at the job level: every (configuration, seed)
//! cell of a sweep runs an independent,
//! deterministic simulation. This module fans a job list across scoped
//! worker threads (`std::thread::scope` — no external runtime) and
//! returns results **in job order**, regardless of which worker finished
//! first. Because each job is a pure function of its inputs and the
//! output vector is index-addressed, a parallel run produces *byte
//! identical* results (and therefore identical `results/*.json`) to a
//! serial one — the scheduler can only change wall-clock time, never
//! content. The perf harness relies on this to measure sweep scaling.
//!
//! Worker count comes from `--threads N` / `PARALEON_SWEEP_THREADS`,
//! defaulting to the machine's available parallelism; `--serial` (or
//! `--threads 1`) forces in-place serial execution for A/B checks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count for sweeps: `--threads N` beats
/// `PARALEON_SWEEP_THREADS` beats available parallelism; `--serial`
/// forces 1.
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--serial") {
        return 1;
    }
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        if let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            return n.max(1);
        }
    }
    if let Ok(v) = std::env::var("PARALEON_SWEEP_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The worker count a request for `requested` threads actually gets:
/// clamped to the machine's available parallelism. Spawning more workers
/// than cores cannot make an embarrassingly parallel sweep faster — it
/// only adds scheduler churn — and, worse, it used to make the perf
/// harness report "8-thread" numbers measured on a 1-core box as if
/// eight workers had really run. Callers that report scaling figures
/// should surface both the requested and the effective count.
pub fn effective_threads(requested: usize) -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    requested.clamp(1, avail)
}

/// Run every job and return the results in job order.
///
/// The worker count is first clamped through [`effective_threads`]. With
/// an effective count of 1 the jobs run serially on the calling thread —
/// the reference execution. Otherwise that many scoped workers pull jobs
/// off a shared atomic cursor (dynamic load balancing: simulation cells
/// can differ in cost by an order of magnitude) and write each result
/// into its job's slot.
pub fn run<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let threads = effective_threads(threads);
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let n = jobs.len();
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i]
                    .lock()
                    .expect("job mutex poisoned")
                    .take()
                    .expect("job taken twice");
                *slots[i].lock().expect("slot mutex poisoned") = Some(job());
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot mutex poisoned")
                .expect("job produced no result")
        })
        .collect()
}

/// Fan a (config × seed) grid: `f(config, seed)` for every cell, results
/// in row-major `(config, seed)` order — the common shape of the
/// experiment binaries' multi-seed sweeps.
pub fn run_grid<C, T, F>(threads: usize, configs: &[C], seeds: &[u64], f: F) -> Vec<T>
where
    C: Sync,
    F: Fn(&C, u64) -> T + Sync + Send,
    T: Send,
{
    let f = &f;
    let jobs: Vec<_> = configs
        .iter()
        .flat_map(|c| seeds.iter().map(move |&s| move || f(c, s)))
        .collect();
    run(threads, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<_> = (0..64u64)
            .map(|i| {
                move || {
                    // Stagger completion so later jobs often finish first.
                    std::thread::sleep(std::time::Duration::from_micros(64 - i));
                    i * i
                }
            })
            .collect();
        let got = run(8, jobs);
        let want: Vec<u64> = (0..64).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mk = |threads| {
            let jobs: Vec<_> = (0..40u64)
                .map(|i| move || i.wrapping_mul(0xDEAD_BEEF))
                .collect();
            run(threads, jobs)
        };
        assert_eq!(mk(1), mk(4));
    }

    #[test]
    fn grid_is_row_major() {
        let got = run_grid(4, &[10u64, 20], &[1, 2, 3], |c, s| c + s);
        assert_eq!(got, vec![11, 12, 13, 21, 22, 23]);
    }

    #[test]
    fn effective_threads_clamps_to_machine() {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(effective_threads(0), 1);
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(usize::MAX), avail);
        assert!(effective_threads(avail + 7) <= avail);
    }

    #[test]
    fn zero_and_single_job_edge_cases() {
        let empty: Vec<fn() -> u32> = Vec::new();
        assert!(run(4, empty).is_empty());
        assert_eq!(run(4, vec![|| 7u32]), vec![7]);
    }
}
