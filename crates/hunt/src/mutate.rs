//! Genome mutation operators, targeted by oracle kind.
//!
//! Collie's insight is that anomaly search needs *directed* mutation:
//! random scenario soup rarely trips a pause storm, but "pile an incast
//! onto one ToR and slow its uplink" does. Each [`OracleKind`] therefore
//! gets its own operator palette — a storm hunt favors incasts, host
//! PFC storms and uplink degrades; a livelock hunt favors corruption
//! windows and starvation-prone parameter extremes — on top of a shared
//! pool of generic tweaks. All randomness flows from the caller's seeded
//! RNG, so hunts replay exactly.

use rand::rngs::StdRng;
use rand::Rng;

use paraleon_dcqcn::{ParamSpace, ALL_PARAMS};
use paraleon_netsim::{FaultPlan, Nanos, NodeId, TopoSpec};

use crate::genome::{GenomeCaps, HuntPoint};
use crate::oracle::OracleKind;

/// Time quantum for generated starts/durations (ns). Coarse times keep
/// genomes readable and give the minimizer fewer distinct values to
/// preserve.
const QUANTUM: Nanos = 100_000;

fn quantized(rng: &mut StdRng, lo: Nanos, hi: Nanos) -> Nanos {
    let lo_steps = lo / QUANTUM;
    let steps = (hi / QUANTUM).max(1).max(lo_steps);
    rng.gen_range(lo_steps..=steps) * QUANTUM
}

fn random_host(point: &HuntPoint, rng: &mut StdRng) -> NodeId {
    rng.gen_range(0..point.topo.n_hosts())
}

fn random_host_pair(point: &HuntPoint, rng: &mut StdRng) -> (NodeId, NodeId) {
    let n = point.topo.n_hosts();
    let src = rng.gen_range(0..n);
    let mut dst = rng.gen_range(0..n - 1);
    if dst >= src {
        dst += 1;
    }
    (src, dst)
}

/// A random existing `(node, port)` edge endpoint, weighted toward the
/// contended ones (switch ports over host uplinks, 3:1). Sampling the
/// built graph instead of two-tier index arithmetic keeps the operator
/// correct for every topology family.
fn random_edge(point: &HuntPoint, rng: &mut StdRng) -> (NodeId, usize) {
    let t = point.topo.build();
    if rng.gen_range(0u32..4) == 0 {
        // A host's uplink.
        (rng.gen_range(0..t.n_hosts()), 0)
    } else {
        // Any switch port (down-ports and uplinks alike).
        let sw = rng.gen_range(t.n_hosts()..t.n_nodes());
        (sw, rng.gen_range(0..t.ports(sw).len()))
    }
}

/// The individual operators. Each returns `true` when it changed the
/// point (an op can be a no-op when a cap is already saturated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Nudge one DCQCN parameter by a random factor, clamped to the
    /// standard space.
    TweakParam,
    /// Pin one DCQCN parameter to its min or max.
    ExtremeParam,
    /// Toggle target-rate clamping.
    FlipClamp,
    /// Add one random flow spec.
    AddFlow,
    /// Remove one flow spec.
    DropFlow,
    /// Add a many-to-one incast onto a single destination.
    AddIncast,
    /// Double one spec's repetition count.
    BoostCount,
    /// Double one spec's flow size.
    BoostBytes,
    /// Flap a random edge.
    AddFlap,
    /// Degrade a random edge hard.
    AddDegrade,
    /// Open a packet-corruption window on a random edge.
    AddLoss,
    /// A host asserts a sustained PFC storm.
    AddStorm,
    /// Impair the control-plane channel (loss/delay/duplication on one
    /// or both lanes).
    AddCtrlImpair,
    /// Kill the controller (warm or cold restart).
    AddCtrlCrash,
    /// Remove one fault event.
    DropFault,
    /// Re-seed the simulator RNG.
    Reseed,
    /// Swap the topology family (two-tier ↔ rail/mixed-rate/three-tier),
    /// preserving the host count; fault events that don't fit the new
    /// port layout are dropped.
    SwapTopoFamily,
    /// Attach a barrier-synchronized collective (or re-roll the existing
    /// one's kind).
    AddCollective,
    /// Detach the collective.
    DropCollective,
}

/// Generic pool every hunt draws from.
const GENERIC: &[Op] = &[
    Op::TweakParam,
    Op::AddFlow,
    Op::DropFlow,
    Op::BoostCount,
    Op::BoostBytes,
    Op::DropFault,
    Op::Reseed,
    Op::FlipClamp,
    Op::SwapTopoFamily,
    Op::AddCollective,
    Op::DropCollective,
];

/// Kind-targeted palette, mixed 50/50 with [`GENERIC`].
fn palette(kind: OracleKind) -> &'static [Op] {
    match kind {
        OracleKind::GoodputCollapse => &[
            Op::AddFlap,
            Op::AddDegrade,
            Op::AddLoss,
            Op::ExtremeParam,
            Op::AddIncast,
        ],
        OracleKind::PfcStorm => &[
            Op::AddIncast,
            Op::AddStorm,
            Op::AddDegrade,
            Op::BoostCount,
            Op::ExtremeParam,
            // Barrier-synchronized waves are the natural incast machine.
            Op::AddCollective,
        ],
        OracleKind::Unfairness => &[
            Op::AddDegrade,
            Op::AddLoss,
            Op::AddIncast,
            Op::ExtremeParam,
            Op::AddStorm,
            // Rail/mixed-rate planes skew path capacity between ranks.
            Op::SwapTopoFamily,
        ],
        OracleKind::AuditViolation => &[
            Op::AddStorm,
            Op::AddFlap,
            Op::AddLoss,
            Op::AddIncast,
            Op::AddDegrade,
        ],
        OracleKind::Livelock => &[
            Op::AddLoss,
            Op::AddStorm,
            Op::ExtremeParam,
            Op::AddIncast,
            Op::AddFlap,
        ],
        // The divergence oracle only judges candidates carrying ctrl
        // faults, so its palette is dominated by the two ctrl injectors
        // (AddCtrlImpair twice: weight it over the crash op) plus enough
        // traffic churn to keep dispatches flowing.
        OracleKind::CtrlDivergence => &[
            Op::AddCtrlImpair,
            Op::AddCtrlCrash,
            Op::AddCtrlImpair,
            Op::AddIncast,
            Op::BoostCount,
        ],
        // Stub palette for the not-yet-judged fleet-isolation oracle:
        // pressure one tenant's upload lane and traffic volume (the
        // ingredients of queue saturation) until a fleet probe exists.
        OracleKind::TenantInterference => &[
            Op::AddCtrlImpair,
            Op::AddIncast,
            Op::BoostCount,
            Op::BoostBytes,
        ],
    }
}

/// Restore `k_min <= k_max` after a parameter mutation by swapping the
/// thresholds — an inverted pair fails [`HuntPoint::validate`] (the
/// simulator asserts the ordering at admission), and swapping keeps the
/// mutated value in play instead of discarding the operator's work.
fn repair_marking_thresholds(p: &mut HuntPoint) {
    if p.params.k_min > p.params.k_max {
        std::mem::swap(&mut p.params.k_min, &mut p.params.k_max);
    }
}

fn apply(op: Op, p: &mut HuntPoint, caps: &GenomeCaps, rng: &mut StdRng) -> bool {
    let space = ParamSpace::standard();
    match op {
        Op::TweakParam => {
            let id = ALL_PARAMS[rng.gen_range(0..ALL_PARAMS.len())];
            let spec = space.spec(id);
            let factor = rng.gen_range(0.25f64..4.0);
            p.params.set(id, spec.clamp(p.params.get(id) * factor));
            repair_marking_thresholds(p);
            true
        }
        Op::ExtremeParam => {
            let id = ALL_PARAMS[rng.gen_range(0..ALL_PARAMS.len())];
            let spec = space.spec(id);
            let v = if rng.gen_bool(0.5) {
                spec.min
            } else {
                spec.max
            };
            p.params.set(id, spec.clamp(v));
            repair_marking_thresholds(p);
            true
        }
        Op::FlipClamp => {
            p.params.clamp_tgt_rate = !p.params.clamp_tgt_rate;
            true
        }
        Op::AddFlow => {
            if p.workload.len() >= caps.max_flow_specs {
                return false;
            }
            let (src, dst) = random_host_pair(p, rng);
            p.workload.push(crate::genome::FlowSpec {
                src,
                dst,
                bytes: rng.gen_range(8u64..=caps.max_flow_bytes / 1024) * 1024,
                start: quantized(rng, 0, caps.horizon / 2),
                count: rng.gen_range(1..=caps.max_count / 4),
                gap: quantized(rng, QUANTUM, caps.horizon / 8),
            });
            true
        }
        Op::DropFlow => {
            if p.workload.len() <= 1 {
                return false;
            }
            let i = rng.gen_range(0..p.workload.len());
            p.workload.remove(i);
            true
        }
        Op::AddIncast => {
            let dst = random_host(p, rng);
            let fanin = rng.gen_range(2usize..=4);
            let start = quantized(rng, 0, caps.horizon / 2);
            let mut added = false;
            for _ in 0..fanin {
                if p.workload.len() >= caps.max_flow_specs {
                    break;
                }
                let n = p.topo.n_hosts();
                let mut src = rng.gen_range(0..n - 1);
                if src >= dst {
                    src += 1;
                }
                p.workload.push(crate::genome::FlowSpec {
                    src,
                    dst,
                    bytes: rng.gen_range(64u64..=caps.max_flow_bytes / 1024) * 1024,
                    start,
                    count: rng.gen_range(2..=caps.max_count / 2),
                    gap: quantized(rng, QUANTUM, caps.horizon / 16),
                });
                added = true;
            }
            added
        }
        Op::BoostCount => {
            if p.workload.is_empty() {
                return false;
            }
            let i = rng.gen_range(0..p.workload.len());
            let f = &mut p.workload[i];
            let new = (f.count * 2).min(caps.max_count);
            let changed = new != f.count;
            f.count = new;
            changed
        }
        Op::BoostBytes => {
            if p.workload.is_empty() {
                return false;
            }
            let i = rng.gen_range(0..p.workload.len());
            let f = &mut p.workload[i];
            let new = (f.bytes * 2).min(caps.max_flow_bytes);
            let changed = new != f.bytes;
            f.bytes = new;
            changed
        }
        Op::AddFlap => {
            if p.faults.len() + 4 > caps.max_fault_events {
                return false;
            }
            let (node, port) = random_edge(p, rng);
            let first = quantized(rng, 0, caps.horizon / 2);
            let period = quantized(rng, 2 * QUANTUM, caps.horizon / 8).max(2 * QUANTUM);
            let down_for = (period / 2).max(QUANTUM).min(period - QUANTUM);
            p.faults.link_flap(node, port, first, down_for, period, 2);
            true
        }
        Op::AddDegrade => {
            if p.faults.len() >= caps.max_fault_events {
                return false;
            }
            let (node, port) = random_edge(p, rng);
            let at = quantized(rng, 0, caps.horizon / 2);
            let factor = rng.gen_range(0.02f64..0.3);
            p.faults.degrade(at, node, port, factor);
            true
        }
        Op::AddLoss => {
            if p.faults.len() + 2 > caps.max_fault_events {
                return false;
            }
            let (node, port) = random_edge(p, rng);
            let at = quantized(rng, 0, caps.horizon / 2);
            let until = at + quantized(rng, QUANTUM, caps.horizon / 4).max(QUANTUM);
            let prob = rng.gen_range(0.02f64..0.4);
            p.faults.pkt_loss(at, until, node, port, prob);
            true
        }
        Op::AddStorm => {
            if p.faults.len() + 2 > caps.max_fault_events {
                return false;
            }
            let host = random_host(p, rng);
            let start = quantized(rng, 0, caps.horizon / 2);
            let end = start + quantized(rng, QUANTUM, caps.horizon / 3).max(QUANTUM);
            p.faults.pfc_storm(host, start, end);
            true
        }
        Op::AddCtrlImpair => {
            if p.faults.len() >= caps.max_fault_events {
                return false;
            }
            let at = quantized(rng, 0, caps.horizon / 2);
            // At least one lane is always selected; the down (dispatch)
            // lane is the one the epoch protocol defends, so bias there.
            let up = rng.gen_bool(0.5);
            let down = !up || rng.gen_bool(0.7);
            let loss = rng.gen_range(0.1f64..0.6);
            let delay_max = rng.gen_range(0u64..=3);
            let dup = rng.gen_range(0.0f64..0.3);
            p.faults.ctrl_impair(at, up, down, loss, delay_max, dup);
            true
        }
        Op::AddCtrlCrash => {
            if p.faults.len() >= caps.max_fault_events {
                return false;
            }
            let at = quantized(rng, QUANTUM, caps.horizon / 2);
            p.faults.ctrl_crash(at, rng.gen_bool(0.5));
            true
        }
        Op::DropFault => {
            if p.faults.is_empty() {
                return false;
            }
            let i = rng.gen_range(0..p.faults.len());
            let mut faults = FaultPlan::new(p.faults.seed);
            for (j, ev) in p.faults.events().iter().enumerate() {
                if j != i {
                    faults.push(*ev);
                }
            }
            p.faults = faults;
            true
        }
        Op::Reseed => {
            p.seed = rng.gen_range(0u64..1 << 32);
            true
        }
        Op::SwapTopoFamily => {
            // Re-express the current fabric in a different family with
            // the same host count, so every workload endpoint and
            // collective rank survives the swap. The rail and mixed-rate
            // families share the two-tier port layout; the three-tier
            // family does not, so fault events that no longer address a
            // real port are dropped afterwards.
            let base = p.topo.to_two_tier();
            let choices = [
                TopoSpec::TwoTier(base),
                TopoSpec::Rail(paraleon_netsim::RailSpec {
                    n_rail: base.n_tor,
                    n_server: base.hosts_per_tor,
                    n_spine: base.n_leaf,
                    host_gbps: base.host_gbps,
                    uplink_gbps: base.uplink_gbps,
                    delay_ns: base.delay_ns,
                }),
                TopoSpec::MixedRate(paraleon_netsim::MixedRateSpec {
                    n_tor: base.n_tor,
                    hosts_per_tor: base.hosts_per_tor,
                    n_leaf: base.n_leaf,
                    host_gbps: base.host_gbps,
                    fast_gbps: base.uplink_gbps,
                    slow_gbps: (base.uplink_gbps / 4.0).max(1.0),
                    delay_ns: base.delay_ns,
                }),
                TopoSpec::ThreeTier(paraleon_netsim::ThreeTierSpec {
                    n_pod: base.n_tor,
                    tors_per_pod: 1,
                    hosts_per_tor: base.hosts_per_tor,
                    aggs_per_pod: base.n_leaf,
                    spines_per_agg: 1,
                    host_gbps: base.host_gbps,
                    agg_gbps: base.uplink_gbps,
                    spine_gbps: base.uplink_gbps,
                    delay_ns: base.delay_ns,
                }),
            ];
            let new = choices[rng.gen_range(0..choices.len())];
            if new == p.topo {
                return false;
            }
            p.topo = new;
            // Keep only fault events the new fabric can address.
            let topo = p.topo.build();
            let n_hosts = topo.n_hosts();
            let mut faults = FaultPlan::new(p.faults.seed);
            for ev in p.faults.events() {
                let port_ok = ev.node < topo.n_nodes() && ev.port < topo.ports(ev.node).len();
                let storm_ok = !matches!(
                    ev.kind,
                    paraleon_netsim::FaultKind::PfcStormStart
                        | paraleon_netsim::FaultKind::PfcStormEnd
                ) || ev.node < n_hosts;
                if port_ok && storm_ok {
                    faults.push(*ev);
                }
            }
            p.faults = faults;
            true
        }
        Op::AddCollective => {
            let n = p.topo.n_hosts();
            if n < 2 {
                return false;
            }
            // A small distinct-rank set via partial Fisher-Yates.
            let k = rng.gen_range(2..=n.min(6));
            let mut hosts: Vec<NodeId> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                hosts.swap(i, j);
            }
            hosts.truncate(k);
            let kinds = crate::genome::ALL_COLLECTIVES;
            p.collective = Some(crate::genome::CollectiveSpec {
                kind: kinds[rng.gen_range(0..kinds.len())],
                workers: hosts,
                message_bytes: rng.gen_range(64u64..=caps.max_flow_bytes / 1024) * 1024,
                rounds: rng.gen_range(1..=3),
                off_time: quantized(rng, QUANTUM, caps.horizon / 8),
            });
            true
        }
        Op::DropCollective => p.collective.take().is_some(),
    }
}

/// A fresh random starting point: a small fabric with a couple of flow
/// specs and no faults — deliberately bland, so whatever the search
/// finds is attributable to mutation pressure, not a loaded seed.
pub fn seed_point(caps: &GenomeCaps, rng: &mut StdRng) -> HuntPoint {
    let topo = TopoSpec::TwoTier(paraleon_netsim::ClosSpec {
        n_tor: rng.gen_range(2..=caps.max_tor),
        hosts_per_tor: rng.gen_range(2..=caps.max_hosts_per_tor),
        n_leaf: rng.gen_range(1..=caps.max_leaf),
        host_gbps: 100.0,
        uplink_gbps: if rng.gen_bool(0.5) { 100.0 } else { 200.0 },
        delay_ns: 4_000,
    });
    let mut point = HuntPoint {
        topo,
        workload: Vec::new(),
        collective: None,
        faults: FaultPlan::new(rng.gen_range(0u64..1 << 32)),
        params: paraleon_dcqcn::DcqcnParams::nvidia_default(),
        seed: rng.gen_range(0u64..1 << 32),
    };
    for _ in 0..2 {
        apply(Op::AddFlow, &mut point, caps, rng);
    }
    point
}

/// Mutate `base` toward `target`: 1–3 operators drawn from the target's
/// palette mixed with the generic pool. The result always satisfies
/// [`HuntPoint::validate`]; ops that cannot apply (saturated caps) are
/// skipped, and if nothing applied the point is re-seeded instead of
/// returned unchanged (a duplicate would waste an evaluation).
pub fn mutate(
    base: &HuntPoint,
    target: OracleKind,
    caps: &GenomeCaps,
    rng: &mut StdRng,
) -> HuntPoint {
    let targeted = palette(target);
    let mut point = base.clone();
    let n_ops = rng.gen_range(1usize..=3);
    let mut changed = false;
    for _ in 0..n_ops {
        let op = if rng.gen_bool(0.5) {
            targeted[rng.gen_range(0..targeted.len())]
        } else {
            GENERIC[rng.gen_range(0..GENERIC.len())]
        };
        changed |= apply(op, &mut point, caps, rng);
    }
    debug_assert!(point.validate().is_ok(), "mutation broke the genome");
    if !changed || point.validate().is_err() {
        return seed_point(caps, rng);
    }
    point
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ALL_ORACLES;
    use rand::SeedableRng;

    #[test]
    fn mutants_stay_valid_and_capped() {
        let caps = GenomeCaps::default();
        let mut rng = StdRng::seed_from_u64(11);
        let mut p = seed_point(&caps, &mut rng);
        for i in 0..300 {
            let kind = ALL_ORACLES[i % ALL_ORACLES.len()];
            p = mutate(&p, kind, &caps, &mut rng);
            p.validate().expect("mutant valid");
            assert!(p.workload.len() <= caps.max_flow_specs);
            assert!(p.faults.len() <= caps.max_fault_events);
            for f in &p.workload {
                assert!(f.bytes <= caps.max_flow_bytes && f.count <= caps.max_count);
            }
        }
    }

    #[test]
    fn ctrl_palette_injects_valid_control_plane_faults() {
        let caps = GenomeCaps::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = seed_point(&caps, &mut rng);
        let mut saw_impair = false;
        let mut saw_crash = false;
        for _ in 0..200 {
            p = mutate(&p, OracleKind::CtrlDivergence, &caps, &mut rng);
            p.validate().expect("ctrl mutant valid");
            assert!(p.faults.len() <= caps.max_fault_events);
            for ev in p.faults.events() {
                match ev.kind {
                    paraleon_netsim::FaultKind::CtrlImpair {
                        up,
                        down,
                        loss,
                        dup,
                        ..
                    } => {
                        saw_impair = true;
                        assert!(up || down, "an impairment must select a lane");
                        assert!((0.0..=1.0).contains(&loss));
                        assert!((0.0..=1.0).contains(&dup));
                    }
                    paraleon_netsim::FaultKind::CtrlCrash { .. } => saw_crash = true,
                    _ => {}
                }
            }
        }
        assert!(saw_impair, "palette must reach AddCtrlImpair");
        assert!(saw_crash, "palette must reach AddCtrlCrash");
    }

    #[test]
    fn mutation_is_deterministic_in_the_seed() {
        let caps = GenomeCaps::default();
        let mk = || {
            let mut rng = StdRng::seed_from_u64(99);
            let mut p = seed_point(&caps, &mut rng);
            for _ in 0..50 {
                p = mutate(&p, OracleKind::PfcStorm, &caps, &mut rng);
            }
            p.key()
        };
        assert_eq!(mk(), mk());
    }
}
