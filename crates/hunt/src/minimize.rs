//! Delta-debugging minimizer: shrink a confirmed finding while its
//! oracle keeps firing.
//!
//! Greedy passes over every shrinkable axis — drop workload specs and
//! fault events (rightmost-first, so later passes see stable indices),
//! halve repetition counts and flow sizes, reset each DCQCN parameter to
//! its NVIDIA default, shrink the fabric itself (re-addressing every
//! endpoint through [`crate::genome::remap_point`]) — repeated until a
//! full sweep accepts nothing. Running to fixpoint makes the minimizer
//! *idempotent*: minimizing an already-minimal point performs one sweep
//! of rejected trials and returns it unchanged, a property the test
//! suite checks with synthetic predicates and real corpus cases alike.
//!
//! The predicate is injected ([`minimize_with`]), so tests can shrink
//! against cheap synthetic invariants; [`minimize`] wires in the real
//! "evaluate and check the oracle still fires" check.

use paraleon_dcqcn::DcqcnParams;
use paraleon_netsim::{ClosSpec, FaultPlan, TopoSpec};
use serde::Serialize;

use crate::eval::{evaluate, EvalConfig};
use crate::genome::{remap_point, HuntPoint};
use crate::oracle::{OracleConfig, OracleKind};

/// What the minimizer did, recorded into the corpus case.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MinimizeStats {
    /// Shrink candidates tried (predicate evaluations).
    pub trials: u64,
    /// Candidates accepted (each strictly simplified the point).
    pub accepted: u64,
    /// Whether the pass loop reached its fixpoint within the trial
    /// budget (false means the point may shrink further).
    pub converged: bool,
}

impl MinimizeStats {
    /// Reconstruct from the [`Serialize`] representation.
    pub fn from_value(v: &serde::Value) -> Result<Self, String> {
        let uint = |name: &str| {
            v.get(name)
                .and_then(serde::Value::as_u64)
                .ok_or_else(|| format!("MinimizeStats: missing `{name}`"))
        };
        Ok(Self {
            trials: uint("trials")?,
            accepted: uint("accepted")?,
            converged: v
                .get("converged")
                .and_then(serde::Value::as_bool)
                .ok_or("MinimizeStats: missing `converged`")?,
        })
    }
}

/// Shrink `point` while `fires` stays true.
///
/// `fires` must be deterministic. The returned point always satisfies
/// the predicate; if even the input does not, it is returned unchanged
/// with zero trials (a defensive guard — the search only minimizes
/// confirmed findings).
pub fn minimize_with<F>(
    point: &HuntPoint,
    max_trials: u64,
    mut fires: F,
) -> (HuntPoint, MinimizeStats)
where
    F: FnMut(&HuntPoint) -> bool,
{
    let mut stats = MinimizeStats {
        trials: 0,
        accepted: 0,
        converged: false,
    };
    if !fires(point) {
        return (point.clone(), stats);
    }
    let mut best = point.clone();
    loop {
        let mut improved = false;
        let mut try_candidate =
            |cand: HuntPoint, best: &mut HuntPoint, stats: &mut MinimizeStats| {
                if stats.trials >= max_trials || cand == *best || cand.validate().is_err() {
                    return false;
                }
                stats.trials += 1;
                if fires(&cand) {
                    stats.accepted += 1;
                    *best = cand;
                    true
                } else {
                    false
                }
            };

        // Pass 1: drop whole workload specs, rightmost-first.
        let mut i = best.workload.len();
        while i > 0 {
            i -= 1;
            if best.workload.len() <= 1 {
                break;
            }
            let mut cand = best.clone();
            cand.workload.remove(i);
            improved |= try_candidate(cand, &mut best, &mut stats);
        }

        // Pass 2: halve repetition counts (floor 1), to local fixpoint.
        for i in 0..best.workload.len() {
            while best.workload[i].count > 1 {
                let mut cand = best.clone();
                cand.workload[i].count = (cand.workload[i].count / 2).max(1);
                if !try_candidate(cand, &mut best, &mut stats) {
                    break;
                }
                improved = true;
            }
        }

        // Pass 3: halve flow sizes (floor 1 KiB), to local fixpoint.
        for i in 0..best.workload.len() {
            while best.workload[i].bytes > 1024 {
                let mut cand = best.clone();
                cand.workload[i].bytes = (cand.workload[i].bytes / 2).max(1024);
                if !try_candidate(cand, &mut best, &mut stats) {
                    break;
                }
                improved = true;
            }
        }

        // Pass 3b: strip the collective, or failing that shrink it —
        // halve the payload (floor 1 KiB) and collapse to one round. A
        // finding that survives without its collective is a plain
        // workload bug; one that doesn't has proven the barrier matters.
        if best.collective.is_some() {
            let mut cand = best.clone();
            cand.collective = None;
            improved |= try_candidate(cand, &mut best, &mut stats);
        }
        if let Some(c) = &best.collective {
            if c.rounds > 1 {
                let mut cand = best.clone();
                cand.collective.as_mut().unwrap().rounds = 1;
                improved |= try_candidate(cand, &mut best, &mut stats);
            }
        }
        while best
            .collective
            .as_ref()
            .is_some_and(|c| c.message_bytes > 1024)
        {
            let mut cand = best.clone();
            let c = cand.collective.as_mut().unwrap();
            c.message_bytes = (c.message_bytes / 2).max(1024);
            if !try_candidate(cand, &mut best, &mut stats) {
                break;
            }
            improved = true;
        }

        // Pass 4: drop fault events, rightmost-first. Dropping half of a
        // paired transition (a storm's end, a loss window's clear) is
        // legal — the fault simply persists, often an even simpler repro.
        let mut i = best.faults.len();
        while i > 0 {
            i -= 1;
            let mut faults = FaultPlan::new(best.faults.seed);
            for (j, ev) in best.faults.events().iter().enumerate() {
                if j != i {
                    faults.push(*ev);
                }
            }
            let mut cand = best.clone();
            cand.faults = faults;
            improved |= try_candidate(cand, &mut best, &mut stats);
        }

        // Pass 5: reset each DCQCN parameter to its default.
        let defaults = DcqcnParams::nvidia_default();
        for id in paraleon_dcqcn::ALL_PARAMS {
            if best.params.get(id) != defaults.get(id) {
                let mut cand = best.clone();
                cand.params.set(id, defaults.get(id));
                improved |= try_candidate(cand, &mut best, &mut stats);
            }
        }
        if best.params.clamp_tgt_rate != defaults.clamp_tgt_rate {
            let mut cand = best.clone();
            cand.params.clamp_tgt_rate = defaults.clamp_tgt_rate;
            improved |= try_candidate(cand, &mut best, &mut stats);
        }

        // Pass 6a: collapse an exotic topology family back to the plain
        // two-tier Clos with the same host count. Fault events that no
        // longer address a real port make the candidate invalid and the
        // collapse is skipped (dropping them first is pass 4's job); a
        // finding that survives the collapse didn't need the family.
        if best.topo.as_two_tier().is_none() {
            let mut cand = best.clone();
            cand.topo = TopoSpec::TwoTier(best.topo.to_two_tier());
            improved |= try_candidate(cand, &mut best, &mut stats);
        }

        // Pass 6b: shrink the fabric one dimension at a time, re-mapping
        // every endpoint; a shrink that orphans anything fails remap and
        // is skipped without spending a trial. Each candidate derives
        // from the *current* best topology — deriving all three from the
        // sweep-start topology would let a later candidate silently
        // restore a dimension an earlier acceptance just shrank, and the
        // minimizer would oscillate instead of converging. Dimension
        // shrinking only understands the two-tier family; exotic families
        // must collapse (pass 6a) before their dims can shrink.
        for dim in 0..3usize {
            if let Some(&t) = best.topo.as_two_tier() {
                let new_topo = match dim {
                    0 => ClosSpec {
                        n_leaf: t.n_leaf.saturating_sub(1).max(1),
                        ..t
                    },
                    1 => ClosSpec {
                        n_tor: t.n_tor.saturating_sub(1).max(1),
                        ..t
                    },
                    _ => ClosSpec {
                        hosts_per_tor: t.hosts_per_tor.saturating_sub(1).max(1),
                        ..t
                    },
                };
                if TopoSpec::TwoTier(new_topo) == best.topo {
                    continue;
                }
                if let Some(cand) = remap_point(&best, new_topo) {
                    improved |= try_candidate(cand, &mut best, &mut stats);
                }
            }
        }

        if stats.trials >= max_trials {
            // Out of budget: a sweep that "accepted nothing" here proves
            // nothing (try_candidate refuses every trial), so converged
            // stays false.
            break;
        }
        if !improved {
            stats.converged = true;
            break;
        }
    }
    (best, stats)
}

/// Shrink a confirmed finding while oracle `kind` keeps firing under the
/// exact configs it was found with.
pub fn minimize(
    point: &HuntPoint,
    kind: OracleKind,
    eval_cfg: &EvalConfig,
    oracle_cfg: &OracleConfig,
    max_trials: u64,
) -> (HuntPoint, MinimizeStats) {
    minimize_with(point, max_trials, |p| {
        evaluate(eval_cfg, oracle_cfg, p)
            .map(|ev| ev.report.fired(kind))
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::FlowSpec;
    use paraleon_netsim::MILLI;

    fn fat_point() -> HuntPoint {
        let mut faults = FaultPlan::new(3);
        faults.pfc_storm(0, MILLI, 2 * MILLI);
        faults.degrade(MILLI, 9, 0, 0.1);
        HuntPoint {
            topo: TopoSpec::TwoTier(ClosSpec {
                n_tor: 2,
                hosts_per_tor: 4,
                n_leaf: 2,
                host_gbps: 100.0,
                uplink_gbps: 100.0,
                delay_ns: 4_000,
            }),
            workload: vec![
                FlowSpec {
                    src: 0,
                    dst: 4,
                    bytes: 4_000_000,
                    start: 0,
                    count: 16,
                    gap: MILLI,
                },
                FlowSpec {
                    src: 5,
                    dst: 1,
                    bytes: 2_000_000,
                    start: 0,
                    count: 8,
                    gap: MILLI,
                },
            ],
            collective: None,
            faults,
            params: DcqcnParams::expert(),
            seed: 5,
        }
    }

    #[test]
    fn shrinks_to_the_load_bearing_core() {
        // Synthetic oracle: fires while the point still has a storm
        // fault and at least 4 total repetitions. Everything else is
        // incidental and must be stripped.
        let fires = |p: &HuntPoint| {
            let storm = p
                .faults
                .events()
                .iter()
                .any(|e| matches!(e.kind, paraleon_netsim::FaultKind::PfcStormStart));
            let reps: u32 = p.workload.iter().map(|f| f.count).sum();
            storm && reps >= 4
        };
        let (min, stats) = minimize_with(&fat_point(), 10_000, fires);
        assert!(stats.converged);
        assert!(fires(&min));
        assert_eq!(min.workload.len(), 1);
        assert_eq!(min.workload[0].count, 4);
        assert_eq!(min.workload[0].bytes, 1024);
        assert_eq!(min.faults.len(), 1, "only the storm start survives");
        assert_eq!(min.params.ai_rate, DcqcnParams::nvidia_default().ai_rate);
        // The fabric shrank to the minimum that still hosts the genome.
        assert!(min.topo.n_hosts() < fat_point().topo.n_hosts());
    }

    #[test]
    fn shrinks_collective_and_collapses_family() {
        use crate::genome::{CollectiveKind, CollectiveSpec};
        // Start on a rail fabric with a fat allreduce; the synthetic
        // oracle only needs *a* collective with ≥ 4 KiB messages, so the
        // minimizer must collapse the family, drop the extra round and
        // halve the payload down to the 4 KiB floor the predicate sets.
        let mut p = fat_point();
        p.topo = TopoSpec::Rail(paraleon_netsim::RailSpec {
            n_rail: 2,
            n_server: 4,
            n_spine: 2,
            host_gbps: 100.0,
            uplink_gbps: 100.0,
            delay_ns: 4_000,
        });
        p.collective = Some(CollectiveSpec {
            kind: CollectiveKind::RingAllreduce,
            workers: vec![0, 1, 2, 3],
            message_bytes: 1 << 20,
            rounds: 4,
            off_time: MILLI,
        });
        p.validate().expect("fixture valid");
        let fires = |p: &HuntPoint| {
            p.collective
                .as_ref()
                .is_some_and(|c| c.message_bytes >= 4096)
        };
        let (min, stats) = minimize_with(&p, 10_000, fires);
        assert!(stats.converged);
        let c = min.collective.expect("collective is load-bearing");
        assert_eq!(c.rounds, 1);
        assert_eq!(c.message_bytes, 4096);
        assert!(
            min.topo.as_two_tier().is_some(),
            "family must collapse to two-tier, got {:?}",
            min.topo
        );
    }

    #[test]
    fn minimization_is_idempotent() {
        let fires = |p: &HuntPoint| !p.workload.is_empty() && p.workload[0].count >= 2;
        let (once, s1) = minimize_with(&fat_point(), 10_000, fires);
        let (twice, s2) = minimize_with(&once, 10_000, fires);
        assert!(s1.converged && s2.converged);
        assert_eq!(once, twice);
        assert_eq!(s2.accepted, 0, "second run must accept nothing");
    }

    #[test]
    fn non_firing_input_returns_unchanged() {
        let p = fat_point();
        let (out, stats) = minimize_with(&p, 100, |_| false);
        assert_eq!(out, p);
        assert_eq!(stats.trials, 0);
    }
}
