//! The hunt genome: everything that defines one adversarial scenario.
//!
//! A [`HuntPoint`] is a *complete, self-contained recipe* for a
//! simulation run — topology spec, workload, fault plan, DCQCN
//! parameters and RNG seed. It round-trips through JSON byte-identically
//! (hand-rolled readers over the vendored serde's `Value` tree), which
//! is what makes corpus cases replayable: the repro *is* the genome.

use paraleon_dcqcn::DcqcnParams;
use paraleon_netsim::{ClosSpec, FaultKind, FaultPlan, Nanos, NodeId, TopoSpec};
use paraleon_workloads::{
    AllToAll, AllToAllConfig, Collective, PipelineBurst, PipelineConfig, RingAllreduce, RingConfig,
    TreeAllreduce, TreeConfig,
};
use serde::{Serialize, Value};

/// A burst of identical flows: `count` flows of `bytes` from `src` to
/// `dst`, the i-th starting at `start + i·gap`. Repetition is explicit
/// (rather than listing each flow) so the minimizer can shrink sustained
/// load by halving `count` instead of deleting flows one by one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FlowSpec {
    /// Source host.
    pub src: NodeId,
    /// Destination host (must differ from `src`).
    pub dst: NodeId,
    /// Flow size in bytes.
    pub bytes: u64,
    /// Start time of the first repetition (ns).
    pub start: Nanos,
    /// Number of repetitions.
    pub count: u32,
    /// Spacing between consecutive repetitions (ns).
    pub gap: Nanos,
}

impl FlowSpec {
    /// Reconstruct from the [`Serialize`] representation.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let num = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("FlowSpec: missing `{name}`"))
        };
        let spec = Self {
            src: num("src")? as NodeId,
            dst: num("dst")? as NodeId,
            bytes: num("bytes")?,
            start: num("start")?,
            count: num("count")? as u32,
            gap: num("gap")?,
        };
        if spec.src == spec.dst {
            return Err("FlowSpec: src == dst".into());
        }
        if spec.bytes == 0 || spec.count == 0 {
            return Err("FlowSpec: empty flow".into());
        }
        Ok(spec)
    }
}

/// Which collective round machine a [`CollectiveSpec`] builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CollectiveKind {
    /// Full-mesh alltoall (the paper's LLM workload).
    Alltoall,
    /// Ring allreduce: 2(n−1) barrier waves of n chunk flows.
    RingAllreduce,
    /// Binomial-tree allreduce: reduce up, broadcast down.
    TreeAllreduce,
    /// Pipeline-parallel activation bursts between neighbor ranks.
    PipelineBurst,
}

/// Every collective kind, in serialization-name order.
pub const ALL_COLLECTIVES: [CollectiveKind; 4] = [
    CollectiveKind::Alltoall,
    CollectiveKind::RingAllreduce,
    CollectiveKind::TreeAllreduce,
    CollectiveKind::PipelineBurst,
];

impl CollectiveKind {
    /// The serialized name (matches the derive's unit-variant encoding).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Alltoall => "Alltoall",
            Self::RingAllreduce => "RingAllreduce",
            Self::TreeAllreduce => "TreeAllreduce",
            Self::PipelineBurst => "PipelineBurst",
        }
    }

    /// Inverse of [`CollectiveKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        ALL_COLLECTIVES.into_iter().find(|k| k.name() == name)
    }
}

/// A barrier-synchronized collective riding on top of the flow-spec
/// workload: which round machine, which ranks, how much payload. The
/// evaluation drives it through the simulator with completion feedback
/// (waves release only when the previous wave drains), so genomes can
/// express the self-clocked traffic that open-loop [`FlowSpec`] bursts
/// cannot.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CollectiveSpec {
    /// Round-machine family.
    pub kind: CollectiveKind,
    /// Participating ranks (host ids), in rank order.
    pub workers: Vec<NodeId>,
    /// Per-message payload (alltoall/allreduce message, pipeline
    /// microbatch), bytes.
    pub message_bytes: u64,
    /// Rounds to run (bounded so evaluations terminate).
    pub rounds: u32,
    /// OFF (compute) gap between rounds, ns.
    pub off_time: Nanos,
}

impl CollectiveSpec {
    /// Reconstruct from the [`Serialize`] representation.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let uint = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("CollectiveSpec: missing `{name}`"))
        };
        let kind_name = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("CollectiveSpec: missing `kind`")?;
        Ok(Self {
            kind: CollectiveKind::from_name(kind_name)
                .ok_or_else(|| format!("CollectiveSpec: unknown kind `{kind_name}`"))?,
            workers: v
                .get("workers")
                .and_then(Value::as_array)
                .ok_or("CollectiveSpec: missing `workers`")?
                .iter()
                .map(|w| {
                    w.as_u64()
                        .map(|w| w as NodeId)
                        .ok_or("CollectiveSpec: worker is not an integer".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            message_bytes: uint("message_bytes")?,
            rounds: uint("rounds")? as u32,
            off_time: uint("off_time")?,
        })
    }

    /// Check internal consistency against a fabric of `n_hosts` hosts.
    pub fn validate(&self, n_hosts: usize) -> Result<(), String> {
        if self.workers.len() < 2 {
            return Err("collective: needs >= 2 workers".into());
        }
        let mut seen = std::collections::HashSet::new();
        for &w in &self.workers {
            if w >= n_hosts {
                return Err(format!("collective: worker {w} out of range"));
            }
            if !seen.insert(w) {
                return Err(format!("collective: duplicate worker {w}"));
            }
        }
        if self.message_bytes == 0 || self.rounds == 0 {
            return Err("collective: empty payload or zero rounds".into());
        }
        Ok(())
    }

    /// Build the round machine this spec describes.
    pub fn build(&self) -> Box<dyn Collective> {
        let workers = self.workers.clone();
        let rounds = Some(self.rounds);
        match self.kind {
            CollectiveKind::Alltoall => Box::new(AllToAll::new(AllToAllConfig {
                workers,
                message_bytes: self.message_bytes,
                off_time: self.off_time,
                rounds,
            })),
            CollectiveKind::RingAllreduce => Box::new(RingAllreduce::new(RingConfig {
                workers,
                message_bytes: self.message_bytes,
                off_time: self.off_time,
                rounds,
            })),
            CollectiveKind::TreeAllreduce => Box::new(TreeAllreduce::new(TreeConfig {
                workers,
                message_bytes: self.message_bytes,
                off_time: self.off_time,
                rounds,
            })),
            CollectiveKind::PipelineBurst => Box::new(PipelineBurst::new(PipelineConfig {
                workers,
                microbatch_bytes: self.message_bytes,
                microbatches: 2,
                off_time: self.off_time,
                rounds,
            })),
        }
    }
}

/// One point in the hunt search space.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HuntPoint {
    /// Topology recipe (any [`TopoSpec`] family).
    pub topo: TopoSpec,
    /// Offered load.
    pub workload: Vec<FlowSpec>,
    /// Optional barrier-synchronized collective on top of the workload.
    pub collective: Option<CollectiveSpec>,
    /// Scheduled fabric faults.
    pub faults: FaultPlan,
    /// DCQCN parameter setting under test.
    pub params: DcqcnParams,
    /// Simulator RNG seed (ECN coin flips etc.).
    pub seed: u64,
}

impl HuntPoint {
    /// Reconstruct from the [`Serialize`] representation.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| format!("HuntPoint: missing `{name}`"))
        };
        let point = Self {
            // Untagged objects parse as legacy two-tier specs, so corpus
            // files committed before topology families keep loading.
            topo: TopoSpec::from_value(field("topo")?)?,
            workload: field("workload")?
                .as_array()
                .ok_or("HuntPoint: `workload` is not an array")?
                .iter()
                .map(FlowSpec::from_value)
                .collect::<Result<Vec<_>, _>>()?,
            // Pre-collective genomes simply lack the field.
            collective: match v.get("collective") {
                None | Some(Value::Null) => None,
                Some(c) => Some(CollectiveSpec::from_value(c)?),
            },
            faults: FaultPlan::from_value(field("faults")?)?,
            params: DcqcnParams::from_value(field("params")?)?,
            seed: field("seed")?
                .as_u64()
                .ok_or("HuntPoint: `seed` is not an integer")?,
        };
        point.validate()?;
        Ok(point)
    }

    /// Check internal consistency: every flow endpoint, collective rank
    /// and fault target must exist in the topology the spec builds.
    pub fn validate(&self) -> Result<(), String> {
        let n_hosts = self.topo.n_hosts();
        for (i, f) in self.workload.iter().enumerate() {
            if f.src >= n_hosts || f.dst >= n_hosts {
                return Err(format!("workload[{i}]: host out of range"));
            }
            if f.src == f.dst {
                return Err(format!("workload[{i}]: src == dst"));
            }
        }
        if let Some(c) = &self.collective {
            c.validate(n_hosts)?;
        }
        // Cross-parameter constraint the simulator asserts at admission
        // (`EcnMarker::new`): per-param clamping cannot catch it.
        if self.params.k_min > self.params.k_max {
            return Err(format!(
                "params: k_min {} > k_max {}",
                self.params.k_min, self.params.k_max
            ));
        }
        if !self.faults.events().is_empty() {
            // Fault targets are checked against the *built* graph so the
            // same rules cover every topology family (for two-tier specs
            // this matches the old `node_class`/`port_valid` arithmetic).
            let topo = self.topo.build();
            for (i, ev) in self.faults.events().iter().enumerate() {
                if ev.node >= topo.n_nodes() {
                    return Err(format!("faults[{i}]: node {} out of range", ev.node));
                }
                if ev.port >= topo.ports(ev.node).len() {
                    return Err(format!("faults[{i}]: port {} invalid", ev.port));
                }
                if matches!(ev.kind, FaultKind::PfcStormStart | FaultKind::PfcStormEnd)
                    && ev.node >= n_hosts
                {
                    return Err(format!("faults[{i}]: storm target must be a host"));
                }
            }
        }
        Ok(())
    }

    /// Expand the workload into concrete `(src, dst, bytes, start)` flow
    /// admissions, in deterministic spec-then-repetition order.
    pub fn expand_flows(&self) -> Vec<(NodeId, NodeId, u64, Nanos)> {
        let mut out = Vec::new();
        for f in &self.workload {
            for i in 0..f.count as u64 {
                out.push((f.src, f.dst, f.bytes, f.start + i * f.gap));
            }
        }
        out
    }

    /// Canonical compact-JSON form: the dedup key during search and the
    /// byte-comparison basis for replay.
    pub fn key(&self) -> String {
        serde_json::to_string(self).expect("genome serializes")
    }
}

/// Which tier a node id belongs to under `spec`'s id layout (hosts
/// `0..H`, ToRs `H..H+n_tor`, leaves after).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeClass {
    /// Host `(tor_index, local_index)`.
    Host(usize, usize),
    /// ToR `tor_index`.
    Tor(usize),
    /// Leaf `leaf_index`.
    Leaf(usize),
}

/// Classify `node` under `spec`'s id layout, if it exists.
pub fn node_class(spec: &ClosSpec, node: NodeId) -> Option<NodeClass> {
    let h = spec.n_hosts();
    if node < h {
        Some(NodeClass::Host(
            node / spec.hosts_per_tor,
            node % spec.hosts_per_tor,
        ))
    } else if node < h + spec.n_tor {
        Some(NodeClass::Tor(node - h))
    } else if node < spec.n_nodes() {
        Some(NodeClass::Leaf(node - h - spec.n_tor))
    } else {
        None
    }
}

/// Classify `port` on `node`: `Some(class)` if the port exists. Hosts
/// have port 0; ToR ports are down `0..hosts_per_tor` then uplinks
/// `hosts_per_tor..hosts_per_tor+n_leaf`; leaf port `t` faces ToR `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortClass {
    /// A host's single uplink.
    HostUplink,
    /// ToR down-port toward local host `local_index`.
    TorDown(usize),
    /// ToR uplink toward leaf `leaf_index`.
    TorUp(usize),
    /// Leaf down-port toward ToR `tor_index`.
    LeafDown(usize),
}

/// Classify `(node, port)` under `spec`, if the port exists.
pub fn port_valid(spec: &ClosSpec, node: NodeId, port: usize) -> Option<PortClass> {
    match node_class(spec, node)? {
        NodeClass::Host(..) => (port == 0).then_some(PortClass::HostUplink),
        NodeClass::Tor(_) => {
            if port < spec.hosts_per_tor {
                Some(PortClass::TorDown(port))
            } else if port < spec.hosts_per_tor + spec.n_leaf {
                Some(PortClass::TorUp(port - spec.hosts_per_tor))
            } else {
                None
            }
        }
        NodeClass::Leaf(_) => (port < spec.n_tor).then_some(PortClass::LeafDown(port)),
    }
}

/// Re-address `point` onto the smaller (or differently shaped) two-tier
/// topology `new`: every workload endpoint and fault target is
/// re-classified under the old layout and re-encoded under the new one.
/// Returns `None` when anything falls off the shrunken fabric (a flow's
/// host no longer exists, a fault's uplink index exceeds the new leaf
/// count) — the minimizer simply treats that shrink as a failed trial.
/// Only two-tier points remap: the minimizer's family pass collapses
/// other families to [`TopoSpec::TwoTier`] first.
pub fn remap_point(point: &HuntPoint, new: ClosSpec) -> Option<HuntPoint> {
    let mut new = new;
    // A zero-delay fabric has no propagation lookahead, which would force
    // the sharded parallel engine to degenerate to lockstep; clamping to
    // 1 ns keeps every minimized genome runnable on both engines without
    // perceptibly changing the pathology being shrunk.
    new.delay_ns = new.delay_ns.max(1);
    let old = point.topo.as_two_tier()?;
    let map_node = |node: NodeId| -> Option<NodeId> {
        match node_class(old, node)? {
            NodeClass::Host(t, l) => {
                (t < new.n_tor && l < new.hosts_per_tor).then(|| t * new.hosts_per_tor + l)
            }
            NodeClass::Tor(t) => (t < new.n_tor).then(|| new.n_hosts() + t),
            NodeClass::Leaf(l) => (l < new.n_leaf).then(|| new.n_hosts() + new.n_tor + l),
        }
    };
    let map_port = |node: NodeId, port: usize| -> Option<usize> {
        match port_valid(old, node, port)? {
            PortClass::HostUplink => Some(0),
            PortClass::TorDown(l) => (l < new.hosts_per_tor).then_some(l),
            PortClass::TorUp(l) => (l < new.n_leaf).then(|| new.hosts_per_tor + l),
            PortClass::LeafDown(t) => (t < new.n_tor).then_some(t),
        }
    };

    let mut workload = Vec::with_capacity(point.workload.len());
    for f in &point.workload {
        workload.push(FlowSpec {
            src: map_node(f.src)?,
            dst: map_node(f.dst)?,
            ..*f
        });
    }
    let collective = match &point.collective {
        None => None,
        Some(c) => {
            let workers = c
                .workers
                .iter()
                .map(|&w| map_node(w))
                .collect::<Option<Vec<_>>>()?;
            Some(CollectiveSpec {
                workers,
                ..c.clone()
            })
        }
    };
    let mut faults = FaultPlan::new(point.faults.seed);
    for ev in point.faults.events() {
        let mut ev = *ev;
        ev.port = map_port(ev.node, ev.port)?;
        ev.node = map_node(ev.node)?;
        faults.push(ev);
    }
    let out = HuntPoint {
        topo: TopoSpec::TwoTier(new),
        workload,
        collective,
        faults,
        params: point.params,
        seed: point.seed,
    };
    out.validate().ok()?;
    Some(out)
}

/// Bounds the mutation operators respect, keeping every candidate small
/// enough for a CI-budget evaluation.
#[derive(Debug, Clone, Copy)]
pub struct GenomeCaps {
    /// Max ToR switches.
    pub max_tor: usize,
    /// Max hosts per ToR.
    pub max_hosts_per_tor: usize,
    /// Max leaf switches.
    pub max_leaf: usize,
    /// Max workload specs.
    pub max_flow_specs: usize,
    /// Max fault events.
    pub max_fault_events: usize,
    /// Max bytes per individual flow.
    pub max_flow_bytes: u64,
    /// Max repetitions per spec.
    pub max_count: u32,
    /// Scenario horizon: starts/fault times stay below this (ns).
    pub horizon: Nanos,
}

impl Default for GenomeCaps {
    fn default() -> Self {
        Self {
            max_tor: 3,
            max_hosts_per_tor: 6,
            max_leaf: 2,
            max_flow_specs: 12,
            max_fault_events: 12,
            max_flow_bytes: 8_000_000,
            max_count: 40,
            horizon: 30 * paraleon_netsim::MILLI,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    fn spec() -> ClosSpec {
        ClosSpec {
            n_tor: 2,
            hosts_per_tor: 4,
            n_leaf: 2,
            host_gbps: 100.0,
            uplink_gbps: 100.0,
            delay_ns: 5_000,
        }
    }

    fn point() -> HuntPoint {
        let mut faults = FaultPlan::new(7);
        faults.link_flap(8, 4, 1_000_000, 200_000, 500_000, 2);
        faults.pfc_storm(0, 2_000_000, 3_000_000);
        HuntPoint {
            topo: TopoSpec::TwoTier(spec()),
            workload: vec![
                FlowSpec {
                    src: 0,
                    dst: 4,
                    bytes: 1_000_000,
                    start: 0,
                    count: 10,
                    gap: 1_000_000,
                },
                FlowSpec {
                    src: 5,
                    dst: 1,
                    bytes: 500_000,
                    start: 100_000,
                    count: 3,
                    gap: 2_000_000,
                },
            ],
            collective: None,
            faults,
            params: DcqcnParams::expert(),
            seed: 42,
        }
    }

    #[test]
    fn genome_round_trips_through_value() {
        let p = point();
        let back = HuntPoint::from_value(&p.serialize_value()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn expansion_is_spec_then_repetition_ordered() {
        let flows = point().expand_flows();
        assert_eq!(flows.len(), 13);
        assert_eq!(flows[0], (0, 4, 1_000_000, 0));
        assert_eq!(flows[1], (0, 4, 1_000_000, 1_000_000));
        assert_eq!(flows[10], (5, 1, 500_000, 100_000));
    }

    #[test]
    fn validate_rejects_out_of_range_targets() {
        let mut p = point();
        p.workload[0].dst = 99;
        assert!(p.validate().is_err());
        let mut p = point();
        p.faults.link_down(0, 50, 0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn remap_keeps_classes_and_rejects_overflow() {
        let p = point();
        // Shrink to 2×2 hosts, 1 leaf: flows touching local index >= 2
        // or the second uplink must fail; a fitting point remaps.
        let small = ClosSpec {
            hosts_per_tor: 2,
            n_leaf: 1,
            ..spec()
        };
        let mut unfit = p.clone();
        unfit.workload[0].dst = 2; // ToR0 local index 2 — gone at 2 hosts/ToR
        assert!(remap_point(&unfit, small).is_none(), "host 2 cannot fit");

        let mut fits = p.clone();
        fits.workload = vec![FlowSpec {
            src: 0,
            dst: 4,
            bytes: 1_000,
            start: 0,
            count: 1,
            gap: 0,
        }];
        fits.faults = {
            let mut f = FaultPlan::new(1);
            f.link_down(1_000, 8, 4); // ToR0 uplink to leaf 0
            f.pfc_storm(0, 10, 20);
            f
        };
        let got = remap_point(&fits, small).expect("fits");
        assert_eq!(got.topo.n_hosts(), 4);
        // ToR0 is node 4 in the new layout; its leaf-0 uplink is port 2.
        assert_eq!(got.faults.events()[0].node, 4);
        assert_eq!(got.faults.events()[0].port, 2);
        // Host 0 stays host 0; dst host 4 (ToR1 local 0) becomes 2.
        assert_eq!(got.workload[0].dst, 2);
    }

    fn collective() -> CollectiveSpec {
        CollectiveSpec {
            kind: CollectiveKind::RingAllreduce,
            workers: vec![0, 1, 4, 5],
            message_bytes: 500_000,
            rounds: 2,
            off_time: 1_000_000,
        }
    }

    #[test]
    fn collective_and_family_genomes_round_trip() {
        let mut p = point();
        p.collective = Some(collective());
        let back = HuntPoint::from_value(&p.serialize_value()).unwrap();
        assert_eq!(back, p);
        // A non-two-tier family round-trips too (faults dropped: the
        // rail fabric has a different port layout).
        let mut p = point();
        p.topo = TopoSpec::Rail(paraleon_netsim::RailSpec {
            n_rail: 2,
            n_server: 4,
            n_spine: 2,
            host_gbps: 100.0,
            uplink_gbps: 100.0,
            delay_ns: 5_000,
        });
        p.faults = FaultPlan::new(7);
        p.validate().expect("rail genome valid");
        let back = HuntPoint::from_value(&p.serialize_value()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn legacy_untagged_genome_parses_as_two_tier() {
        // Corpus files committed before topology families carry a bare
        // ClosSpec object and no `collective` field.
        let p = point();
        let mut v = p.serialize_value();
        if let Value::Object(fields) = &mut v {
            fields.retain(|(k, _)| k != "collective");
            for (k, val) in fields.iter_mut() {
                if k == "topo" {
                    if let Value::Object(topo_fields) = val {
                        topo_fields.retain(|(k, _)| k != "family");
                    }
                }
            }
        }
        let back = HuntPoint::from_value(&v).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn validate_rejects_bad_collectives() {
        let mut p = point();
        p.collective = Some(CollectiveSpec {
            workers: vec![0, 99],
            ..collective()
        });
        assert!(p.validate().is_err(), "worker out of range");
        p.collective = Some(CollectiveSpec {
            workers: vec![0, 0],
            ..collective()
        });
        assert!(p.validate().is_err(), "duplicate worker");
        p.collective = Some(CollectiveSpec {
            rounds: 0,
            ..collective()
        });
        assert!(p.validate().is_err(), "zero rounds");
    }

    #[test]
    fn collective_spec_builds_every_kind() {
        for kind in ALL_COLLECTIVES {
            let c = CollectiveSpec {
                kind,
                ..collective()
            };
            let machine = c.build();
            assert!(!machine.finished());
            assert_eq!(machine.workers(), &[0, 1, 4, 5]);
            assert_eq!(CollectiveKind::from_name(kind.name()), Some(kind));
        }
    }

    #[test]
    fn remap_remaps_collective_workers() {
        let mut p = point();
        p.workload.truncate(1);
        p.faults = FaultPlan::new(1);
        p.collective = Some(CollectiveSpec {
            workers: vec![0, 4],
            ..collective()
        });
        let small = ClosSpec {
            hosts_per_tor: 2,
            n_leaf: 1,
            ..spec()
        };
        let got = remap_point(&p, small).expect("fits");
        // Host 4 (ToR1 local 0) becomes host 2 at 2 hosts/ToR.
        assert_eq!(got.collective.unwrap().workers, vec![0, 2]);
        // A worker that falls off the fabric fails the remap.
        p.collective = Some(CollectiveSpec {
            workers: vec![0, 2],
            ..collective()
        });
        assert!(remap_point(&p, small).is_none());
    }

    #[test]
    fn remap_clamps_zero_delay_for_shard_lookahead() {
        let p = point();
        let zero_delay = ClosSpec {
            delay_ns: 0,
            ..spec()
        };
        let got = remap_point(&p, zero_delay).expect("same shape fits");
        assert_eq!(got.topo.delay_ns(), 1, "delay must stay >= 1 ns");
        let topo = got.topo.build();
        let map = topo.shard_map(&topo.partition(2));
        assert!(
            topo.lookahead(&map).is_some_and(|d| d >= 1),
            "clamped spec keeps a usable parallel lookahead"
        );
    }
}
