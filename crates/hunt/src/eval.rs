//! Candidate evaluation: run a [`HuntPoint`] and its fault-free twin
//! through the packet simulator and distill the per-interval signals the
//! [`crate::oracle`] suite judges.
//!
//! Determinism contract: `evaluate` is a pure function of
//! `(EvalConfig, OracleConfig, HuntPoint)` — same inputs, same
//! [`OracleReport`], byte for byte. The search fans `evaluate` calls
//! across threads with [`crate::sweep`], which preserves job order, so
//! parallel hunts reproduce serial ones exactly. The only global state
//! touched is the thread-local audit registry, which is reset before and
//! drained after each run so back-to-back evaluations never leak
//! violations into each other.

use serde::{Serialize, Value};

use paraleon::{ClosedLoop, CtrlPlaneConfig, LoopConfig, MonitorKind, SchemeKind};
use paraleon_dcqcn::DcqcnParams;
use paraleon_netsim::{FaultPlan, FlowId, FlowRecord, Nanos, SimConfig, Simulator, MILLI};
use paraleon_workloads::Progress;

use crate::genome::HuntPoint;
use crate::oracle::{judge, CtrlMeasure, OracleConfig, OracleReport};

/// How long and how hard to run each candidate.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EvalConfig {
    /// Measurement intervals to run.
    pub intervals: u64,
    /// Interval length, ns.
    pub lambda_mi: u64,
    /// Deterministic livelock budget: abort the run once the simulator
    /// has processed this many events. Event counts are a pure function
    /// of the inputs, unlike wall-clock time, so the abort itself
    /// replays identically.
    pub event_budget: u64,
    /// Tail window (intervals) the collapse/fairness/livelock oracles
    /// judge.
    pub tail: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            intervals: 20,
            lambda_mi: MILLI,
            event_budget: 20_000_000,
            tail: 5,
        }
    }
}

impl EvalConfig {
    /// Reconstruct from the [`Serialize`] representation.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let uint = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("EvalConfig: missing `{name}`"))
        };
        let cfg = Self {
            intervals: uint("intervals")?,
            lambda_mi: uint("lambda_mi")?,
            event_budget: uint("event_budget")?,
            tail: uint("tail")? as usize,
        };
        if cfg.intervals == 0 || cfg.lambda_mi == 0 || cfg.tail == 0 {
            return Err("EvalConfig: intervals, lambda_mi and tail must be positive".into());
        }
        Ok(cfg)
    }
}

/// Per-interval signals extracted from one simulator run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Delivered goodput per interval, bytes/sec.
    pub goodput: Vec<f64>,
    /// Mean per-device PFC pause fraction per interval, `[0, 1]`.
    pub pause_ratio: Vec<f64>,
    /// Payload bytes delivered per interval.
    pub bytes_delivered: Vec<u64>,
    /// CNPs delivered per interval.
    pub cnps: Vec<u64>,
    /// PFC pause frames per interval.
    pub pfc_events: Vec<u64>,
    /// `(flow, tail bytes)` for flows *eligible* in the tail window:
    /// admitted before it started and not already finished when it
    /// began. Zero-byte entries are flows that were live yet starved.
    pub eligible_tail_bytes: Vec<(FlowId, u64)>,
    /// Flows still unfinished when the run ended.
    pub active_flows_end: u64,
    /// Whether the event budget aborted the run before its scheduled
    /// end.
    pub aborted_early: bool,
    /// Events the simulator processed.
    pub events_processed: u64,
    /// Intervals actually completed (less than scheduled when aborted).
    pub intervals_run: u64,
    /// The tail window length this run was judged with.
    pub tail_len: usize,
}

/// Run one simulation of `point`'s topology/workload/seed under the
/// given fault plan and parameters.
fn run_one(
    cfg: &EvalConfig,
    point: &HuntPoint,
    faults: &FaultPlan,
    params: &DcqcnParams,
) -> Result<RunMetrics, String> {
    let sim_cfg = SimConfig {
        dcqcn: *params,
        track_ground_truth: true,
        seed: point.seed,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(point.topo.build(), sim_cfg);
    let flows = point.expand_flows();
    let mut starts = Vec::with_capacity(flows.len());
    for (src, dst, bytes, start) in flows {
        sim.try_add_flow(src, dst, bytes, start)
            .map_err(|e| format!("flow {src}->{dst}: {e}"))?;
        starts.push(start);
    }
    sim.install_fault_plan(faults)
        .map_err(|e| format!("fault plan: {e}"))?;

    let mut m = RunMetrics {
        goodput: Vec::new(),
        pause_ratio: Vec::new(),
        bytes_delivered: Vec::new(),
        cnps: Vec::new(),
        pfc_events: Vec::new(),
        eligible_tail_bytes: Vec::new(),
        active_flows_end: 0,
        aborted_early: false,
        events_processed: 0,
        intervals_run: 0,
        tail_len: cfg.tail,
    };
    // An attached collective is driven at interval granularity: waves
    // and round starts quantize to λ_MI boundaries exactly like the
    // `paraleon::drivers::run_collective` barrier, so the genome field
    // changes nothing about how the plain workload path executes. The
    // mid-run completion drains only happen on this path — fault-only
    // genomes keep the byte-identical single-drain execution the corpus
    // was recorded under.
    let mut collective = point.collective.as_ref().map(|c| c.build());
    let mut next_round: Option<Nanos> = collective.as_ref().map(|_| 0);
    let mut coll_flows: std::collections::HashSet<FlowId> = Default::default();
    let mut drained: Vec<FlowRecord> = Vec::new();
    // Exact per-flow bytes for every interval; the tail slice feeds the
    // fairness oracle after we know where the run actually ended.
    let mut truth: Vec<Vec<(FlowId, u64)>> = Vec::new();
    for i in 0..cfg.intervals {
        if let Some(coll) = collective.as_mut() {
            if let Some(t) = next_round {
                if sim.now() >= t && !coll.finished() {
                    let wave = coll
                        .start_round(sim.now())
                        .map_err(|e| format!("collective round: {e}"))?;
                    for f in &wave {
                        let qp = paraleon::drivers::qp_id(f.src, f.dst);
                        let id = sim
                            .try_add_flow_on_qp(f.src, f.dst, f.bytes, sim.now(), qp)
                            .map_err(|e| format!("collective flow {}->{}: {e}", f.src, f.dst))?;
                        coll_flows.insert(id);
                    }
                    next_round = None;
                }
            }
        }
        sim.run_until((i + 1) * cfg.lambda_mi);
        if let Some(coll) = collective.as_mut() {
            let recs = sim.take_completions();
            for r in &recs {
                if coll_flows.remove(&r.flow) {
                    match coll
                        .on_flow_done(r.finish)
                        .map_err(|e| format!("collective completion: {e}"))?
                    {
                        Progress::Pending => {}
                        Progress::NextWave(wave) => {
                            for f in &wave {
                                let qp = paraleon::drivers::qp_id(f.src, f.dst);
                                let id = sim
                                    .try_add_flow_on_qp(f.src, f.dst, f.bytes, sim.now(), qp)
                                    .map_err(|e| {
                                        format!("collective flow {}->{}: {e}", f.src, f.dst)
                                    })?;
                                coll_flows.insert(id);
                            }
                        }
                        Progress::RoundDone { next_round: nr } => {
                            if let Some(t) = nr {
                                next_round = Some(t);
                            }
                        }
                    }
                }
            }
            drained.extend(recs);
        }
        let iv = sim.collect_interval();
        m.goodput.push(iv.goodput_bytes_per_sec());
        m.pause_ratio.push(iv.pfc_pause_ratio);
        m.bytes_delivered.push(iv.bytes_delivered);
        m.cnps.push(iv.cnps);
        m.pfc_events.push(iv.pfc_events);
        truth.push(iv.truth_flow_bytes);
        m.intervals_run += 1;
        if sim.events_processed > cfg.event_budget {
            m.aborted_early = true;
            break;
        }
    }
    m.events_processed = sim.events_processed;
    m.active_flows_end = sim.active_flows() as u64;

    let tail_start_iv = (m.intervals_run as usize).saturating_sub(cfg.tail);
    let tail_start_t = tail_start_iv as u64 * cfg.lambda_mi;
    let finished: std::collections::HashMap<FlowId, u64> = drained
        .into_iter()
        .chain(sim.take_completions())
        .map(|r| (r.flow, r.finish))
        .collect();
    for (flow_idx, &start) in starts.iter().enumerate() {
        let flow = flow_idx as FlowId;
        if start >= tail_start_t {
            continue;
        }
        if let Some(&finish) = finished.get(&flow) {
            if finish < tail_start_t {
                continue;
            }
        }
        let bytes: u64 = truth[tail_start_iv..]
            .iter()
            .flat_map(|iv| iv.iter())
            .filter(|&&(f, _)| f == flow)
            .map(|&(_, b)| b)
            .sum();
        m.eligible_tail_bytes.push((flow, bytes));
    }
    Ok(m)
}

/// Extra quiescence intervals the control-plane probe grants after its
/// scheduled run. This must outlast a full SA episode (~280 monitor
/// intervals at the paper's Table III settings — the scheme dispatches
/// a candidate every interval until the episode cools) plus the retry
/// backoff cap, so a loop that has not settled by then genuinely
/// diverged.
const PROBE_SETTLE: u64 = 400;

/// The control-plane probe: drive the candidate's topology, workload,
/// seed and fault plan through the *full closed loop* twice — once with
/// the hardened epoch/retry/snapshot protocol, once with the naive
/// apply-everything fabric — and measure whether each reaches quiescent
/// agreement between the controller's believed parameters and what the
/// fabric actually runs. Returns `None` when the plan schedules no
/// control-plane events: the probe (and the CtrlDivergence outcome it
/// feeds) then never runs, which keeps ctrl-free reports — including
/// every corpus case committed before this oracle existed — byte-stable.
/// The probe drives only the plain flow workload: it judges protocol
/// convergence, not traffic shape, and the expanded specs already keep
/// dispatches flowing.
fn ctrl_probe(cfg: &EvalConfig, point: &HuntPoint) -> Result<Option<CtrlMeasure>, String> {
    if !point.faults.events().iter().any(|e| e.kind.is_ctrl()) {
        return Ok(None);
    }
    let run = |naive: bool| -> Result<(bool, u64, u64, u64, f64), String> {
        let mut cl = ClosedLoop::builder(point.topo.build())
            .scheme(SchemeKind::Paraleon)
            .monitor(MonitorKind::Paraleon)
            .sim_config(SimConfig {
                dcqcn: point.params,
                seed: point.seed,
                ..SimConfig::default()
            })
            .loop_config(LoopConfig {
                lambda_mi: cfg.lambda_mi,
                // Tuning every interval keeps dispatches flowing, so the
                // protocol under test always has traffic to mishandle.
                force_tuning: true,
                ..LoopConfig::default()
            })
            .ctrl_plane(CtrlPlaneConfig {
                naive,
                ..CtrlPlaneConfig::default()
            })
            .seed(point.seed)
            .build();
        for (src, dst, bytes, start) in point.expand_flows() {
            cl.sim
                .try_add_flow(src, dst, bytes, start)
                .map_err(|e| format!("probe flow {src}->{dst}: {e}"))?;
        }
        cl.install_fault_plan(&point.faults)
            .map_err(|e| format!("probe fault plan: {e}"))?;
        for _ in 0..cfg.intervals {
            cl.step();
            if cl.sim.events_processed() > cfg.event_budget {
                break;
            }
        }
        let settled = cl.ctrl_settle(PROBE_SETTLE);
        let converged = settled && !cl.ctrl_diverged();
        let stats = cl.ctrl().expect("probe armed the ctrl plane").stats();
        let sent = stats.up.sent + stats.down.sent;
        let lost = stats.up.lost + stats.down.lost;
        Ok((
            converged,
            lost,
            stats.retries,
            stats.crashes,
            lost as f64 / sent.max(1) as f64,
        ))
    };
    let (hardened_converged, msgs_lost, retries, crashes, loss_ratio) = run(false)?;
    let (naive_converged, ..) = run(true)?;
    Ok(Some(CtrlMeasure {
        hardened_converged,
        naive_converged,
        msgs_lost,
        retries,
        crashes,
        loss_ratio,
    }))
}

/// The result of judging one candidate: both runs' signals plus the
/// oracle verdicts.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Signals of the faulted/parameterized run.
    pub run: RunMetrics,
    /// Signals of the fault-free, default-parameter twin.
    pub twin: RunMetrics,
    /// The oracle verdicts over the pair.
    pub report: OracleReport,
}

/// Evaluate `point`: run it, run its fault-free twin (same topology,
/// workload and seed; empty fault plan; NVIDIA-default parameters), and
/// judge the pair with every oracle.
///
/// Fails only on inadmissible points (the search never generates those —
/// [`HuntPoint::validate`] mirrors the simulator's admission checks),
/// so corpus replays surface a `String` error instead of panicking.
pub fn evaluate(
    cfg: &EvalConfig,
    oracles: &OracleConfig,
    point: &HuntPoint,
) -> Result<Evaluation, String> {
    // Violations must be *counted*, not thrown: debug builds default to
    // panicking at the detection site, which would kill the hunt on the
    // very pathology it is hunting for.
    paraleon_audit::set_panic_on_violation(false);
    paraleon_audit::reset();
    let run = run_one(cfg, point, &point.faults, &point.params)?;
    let (violations, _) = paraleon_audit::drain();
    let twin = run_one(
        cfg,
        point,
        &FaultPlan::new(point.faults.seed),
        &DcqcnParams::nvidia_default(),
    )?;
    // Drop anything the twin tripped: its run is a baseline, not a
    // subject, and the next evaluation must start from a clean registry.
    let _ = paraleon_audit::drain();
    // The control-plane probe runs last for the same reason: its two
    // closed-loop runs are protocol subjects, not audit subjects.
    let ctrl = ctrl_probe(cfg, point)?;
    let _ = paraleon_audit::drain();
    let report = judge(oracles, &run, &twin, violations, ctrl);
    Ok(Evaluation { run, twin, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{CollectiveKind, CollectiveSpec, FlowSpec, HuntPoint};
    use paraleon_netsim::{ClosSpec, TopoSpec};

    fn tiny_point() -> HuntPoint {
        HuntPoint {
            topo: TopoSpec::TwoTier(ClosSpec {
                n_tor: 2,
                hosts_per_tor: 2,
                n_leaf: 1,
                host_gbps: 100.0,
                uplink_gbps: 100.0,
                delay_ns: 1_000,
            }),
            workload: vec![FlowSpec {
                src: 0,
                dst: 2,
                bytes: 200_000,
                start: 0,
                count: 2,
                gap: 100_000,
            }],
            collective: None,
            faults: FaultPlan::new(7),
            params: DcqcnParams::nvidia_default(),
            seed: 7,
        }
    }

    #[test]
    fn healthy_point_fires_nothing() {
        let cfg = EvalConfig {
            intervals: 6,
            lambda_mi: MILLI,
            event_budget: 50_000_000,
            tail: 3,
        };
        let ev = evaluate(&cfg, &OracleConfig::default(), &tiny_point()).expect("evaluates");
        assert_eq!(ev.run.intervals_run, 6);
        assert!(!ev.run.aborted_early);
        assert!(
            ev.report.fired_kinds().is_empty(),
            "healthy run fired {:?}",
            ev.report.fired_kinds()
        );
    }

    #[test]
    fn collective_points_evaluate_deterministically() {
        let cfg = EvalConfig {
            intervals: 8,
            lambda_mi: MILLI,
            event_budget: 50_000_000,
            tail: 3,
        };
        let mut p = tiny_point();
        // A rail-optimized fabric plus a ring allreduce: the genome's two
        // new axes together, through the full evaluate path.
        p.topo = TopoSpec::Rail(paraleon_netsim::RailSpec {
            n_rail: 2,
            n_server: 2,
            n_spine: 1,
            host_gbps: 100.0,
            uplink_gbps: 100.0,
            delay_ns: 1_000,
        });
        p.collective = Some(CollectiveSpec {
            kind: CollectiveKind::RingAllreduce,
            workers: vec![0, 1, 2, 3],
            message_bytes: 200_000,
            rounds: 2,
            off_time: MILLI,
        });
        p.validate().expect("fixture valid");
        let a = evaluate(&cfg, &OracleConfig::default(), &p).expect("evaluates");
        let b = evaluate(&cfg, &OracleConfig::default(), &p).expect("evaluates");
        assert_eq!(a.run.bytes_delivered, b.run.bytes_delivered);
        assert_eq!(a.run.events_processed, b.run.events_processed);
        assert!(
            a.run.bytes_delivered.iter().sum::<u64>() > 0,
            "the collective must move bytes"
        );
    }

    #[test]
    fn twin_of_fault_free_point_matches_run() {
        // A point with no faults and default params IS its own twin, so
        // both runs must produce identical signals (determinism check).
        let cfg = EvalConfig {
            intervals: 4,
            lambda_mi: MILLI,
            event_budget: 50_000_000,
            tail: 2,
        };
        let ev = evaluate(&cfg, &OracleConfig::default(), &tiny_point()).expect("evaluates");
        assert_eq!(ev.run.goodput, ev.twin.goodput);
        assert_eq!(ev.run.bytes_delivered, ev.twin.bytes_delivered);
        assert_eq!(ev.run.events_processed, ev.twin.events_processed);
    }

    #[test]
    fn ctrl_probe_runs_only_for_ctrl_faulted_points() {
        let cfg = EvalConfig {
            intervals: 12,
            lambda_mi: MILLI,
            event_budget: 50_000_000,
            tail: 3,
        };
        let clean = tiny_point();
        assert!(ctrl_probe(&cfg, &clean).expect("probes").is_none());

        let mut sick = tiny_point();
        // Elephants to keep the tuner dispatching.
        sick.workload = vec![crate::genome::FlowSpec {
            src: 2,
            dst: 0,
            bytes: 4_000_000,
            start: 0,
            count: 8,
            gap: MILLI,
        }];
        sick.faults.ctrl_impair(2 * MILLI, false, true, 0.5, 3, 0.3);
        let mut outcomes = Vec::new();
        for seed in 0..16 {
            sick.seed = seed;
            let m = ctrl_probe(&cfg, &sick)
                .expect("probes")
                .expect("ctrl faults scheduled");
            outcomes.push(m);
        }
        eprintln!("probe outcomes: {outcomes:#?}");
        assert!(
            outcomes.iter().any(|m| m.msgs_lost > 0),
            "a 50% lossy lane must lose messages"
        );
        assert!(
            outcomes
                .iter()
                .any(|m| m.hardened_converged && !m.naive_converged),
            "some seed must strand the naive protocol while hardened recovers"
        );
    }

    #[test]
    fn event_budget_aborts_deterministically() {
        let cfg = EvalConfig {
            intervals: 6,
            lambda_mi: MILLI,
            event_budget: 10, // absurdly small: first interval blows it
            tail: 3,
        };
        let a = evaluate(&cfg, &OracleConfig::default(), &tiny_point()).expect("evaluates");
        let b = evaluate(&cfg, &OracleConfig::default(), &tiny_point()).expect("evaluates");
        assert!(a.run.aborted_early);
        assert!(a.report.fired(crate::oracle::OracleKind::Livelock));
        assert_eq!(a.run.intervals_run, b.run.intervals_run);
        assert_eq!(a.run.events_processed, b.run.events_processed);
    }
}
