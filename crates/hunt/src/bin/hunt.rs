//! `hunt` — adversarial anomaly hunter CLI.
//!
//! Modes:
//!
//! * `hunt [--budget N] [--seed S] [--oracle k1,k2] [--threads N]`
//!   run a hunt; `--write` commits each finding into the corpus.
//! * `hunt --replay case.json` — re-run one committed case and verify
//!   its oracle still fires with a byte-identical report.
//! * `hunt corpus replay` — regression mode: replay every committed
//!   case; non-zero exit on any drift.
//! * `hunt corpus repin` — after a *deliberate* simulator semantics
//!   change: re-evaluate every case, verify its oracle still fires, and
//!   rewrite the pinned report in place. Refuses to repin a case whose
//!   pathology no longer reproduces.
//!
//! `--expect N` makes the hunt itself a gate: exit non-zero unless at
//! least N distinct pathology classes were found (the CI smoke job uses
//! this to prove the search still finds what it once found).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use paraleon_hunt::corpus::{self, HuntCase};
use paraleon_hunt::oracle::{OracleKind, ALL_ORACLES};
use paraleon_hunt::search::{hunt, SearchConfig};
use paraleon_hunt::sweep;
use serde::Serialize as _;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hunt [--budget N] [--seed S] [--oracle k1,k2] [--threads N | --serial]\n\
         \x20           [--no-minimize] [--minimize-trials N] [--write] [--corpus DIR] [--expect N]\n\
         \x20      hunt --replay CASE.json...\n\
         \x20      hunt corpus replay [--corpus DIR]\n\
         \x20      hunt corpus repin [--corpus DIR]\n\
         oracles: {} (opt-in: {})",
        ALL_ORACLES
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", "),
        OracleKind::CtrlDivergence.name(),
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut corpus_dir = corpus::corpus_dir();
    if let Some(i) = args.iter().position(|a| a == "--corpus") {
        match args.get(i + 1) {
            Some(d) => corpus_dir = PathBuf::from(d),
            None => return usage(),
        }
    }

    // Replay modes.
    if args.first().map(String::as_str) == Some("corpus") {
        return match args.get(1).map(String::as_str) {
            Some("replay") => replay_corpus(&corpus_dir),
            Some("repin") => repin_corpus(&corpus_dir),
            _ => usage(),
        };
    }
    if let Some(i) = args.iter().position(|a| a == "--replay") {
        let files: Vec<&String> = args[i + 1..]
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .collect();
        if files.is_empty() {
            return usage();
        }
        let mut ok = true;
        for f in files {
            ok &= replay_one(&PathBuf::from(f));
        }
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // Hunt mode.
    let mut cfg = SearchConfig {
        threads: sweep::threads_from_args(),
        ..SearchConfig::default()
    };
    let mut write = false;
    let mut expect = 0usize;
    let flag_u64 = |args: &[String], name: &str| -> Option<Option<u64>> {
        let i = args.iter().position(|a| a == name)?;
        Some(args.get(i + 1).and_then(|v| v.parse().ok()))
    };
    for (name, slot) in [
        ("--budget", &mut cfg.budget),
        ("--seed", &mut cfg.seed),
        ("--minimize-trials", &mut cfg.minimize_trials),
    ] {
        match flag_u64(&args, name) {
            Some(Some(v)) => *slot = v,
            Some(None) => return usage(),
            None => {}
        }
    }
    match flag_u64(&args, "--expect") {
        Some(Some(v)) => expect = v as usize,
        Some(None) => return usage(),
        None => {}
    }
    if args.iter().any(|a| a == "--no-minimize") {
        cfg.minimize = false;
    }
    if args.iter().any(|a| a == "--write") {
        write = true;
    }
    if let Some(i) = args.iter().position(|a| a == "--oracle") {
        let Some(list) = args.get(i + 1) else {
            return usage();
        };
        let mut targets = Vec::new();
        for name in list.split(',') {
            match OracleKind::from_name(name.trim()) {
                Some(k) => targets.push(k),
                None => {
                    eprintln!("unknown oracle `{name}`");
                    return usage();
                }
            }
        }
        cfg.targets = targets;
    }

    eprintln!(
        "hunting: budget={} seed={} threads={} oracles=[{}]",
        cfg.budget,
        cfg.seed,
        cfg.threads,
        cfg.targets
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(",")
    );
    let result = hunt(&cfg);
    for f in &result.findings {
        eprintln!(
            "FOUND {}: score {:.3} at eval {}{}, repro: {} flow spec(s), {} fault event(s), {} hosts",
            f.kind.name(),
            f.found_score,
            f.found_at_eval,
            f.minimize
                .map(|m| format!(", minimized in {} trials ({} accepted)", m.trials, m.accepted))
                .unwrap_or_default(),
            f.point.workload.len(),
            f.point.faults.len(),
            f.point.topo.n_hosts(),
        );
        if write {
            let name = format!("{}_seed{}", f.kind.name(), cfg.seed);
            let case = HuntCase::from_finding(name, &cfg.eval, &cfg.oracles, f);
            match case.write(&corpus_dir) {
                Ok(path) => eprintln!("  wrote {}", path.display()),
                Err(e) => {
                    eprintln!("  write failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!(
        "{}",
        serde_json::to_string(&result.summary()).expect("summary serializes")
    );
    if result.findings.len() < expect {
        eprintln!(
            "expected >= {expect} pathology classes, found {}",
            result.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn replay_one(path: &Path) -> bool {
    let case = match HuntCase::load(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("FAIL {}: {e}", path.display());
            return false;
        }
    };
    match corpus::replay(&case) {
        Ok(r) if r.passed() => {
            eprintln!("ok {} ({})", case.name, case.kind.name());
            true
        }
        Ok(r) => {
            eprintln!(
                "FAIL {}: fired={} identical={}",
                case.name, r.fired, r.identical
            );
            if !r.identical {
                eprintln!("  want: {}", r.want);
                eprintln!("  got:  {}", r.got);
            }
            false
        }
        Err(e) => {
            eprintln!("FAIL {}: {e}", case.name);
            false
        }
    }
}

fn repin_corpus(dir: &Path) -> ExitCode {
    let cases = match corpus::load_dir(dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("corpus load failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cases.is_empty() {
        eprintln!("corpus at {} is empty", dir.display());
        return ExitCode::FAILURE;
    }
    let mut failed = 0usize;
    for case in cases {
        let ev = match paraleon_hunt::eval::evaluate(&case.eval, &case.oracles, &case.point) {
            Ok(ev) => ev,
            Err(e) => {
                failed += 1;
                eprintln!("FAIL {}: {e}", case.name);
                continue;
            }
        };
        if !ev.report.fired(case.kind) {
            failed += 1;
            eprintln!(
                "FAIL {}: the {} oracle no longer fires; not repinning",
                case.name,
                case.kind.name()
            );
            continue;
        }
        let mut repinned = case;
        repinned.report = ev.report.serialize_value();
        match repinned.write(dir) {
            Ok(path) => eprintln!("repinned {}", path.display()),
            Err(e) => {
                failed += 1;
                eprintln!("FAIL {}: {e}", repinned.name);
            }
        }
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn replay_corpus(dir: &Path) -> ExitCode {
    let cases = match corpus::load_dir(dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("corpus load failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cases.is_empty() {
        eprintln!("corpus at {} is empty", dir.display());
        return ExitCode::FAILURE;
    }
    let mut failed = 0usize;
    for case in &cases {
        match corpus::replay(case) {
            Ok(r) if r.passed() => eprintln!("ok {} ({})", case.name, case.kind.name()),
            Ok(r) => {
                failed += 1;
                eprintln!(
                    "FAIL {}: fired={} identical={}",
                    case.name, r.fired, r.identical
                );
                if !r.identical {
                    eprintln!("  want: {}", r.want);
                    eprintln!("  got:  {}", r.got);
                }
            }
            Err(e) => {
                failed += 1;
                eprintln!("FAIL {}: {e}", case.name);
            }
        }
    }
    eprintln!(
        "corpus replay: {}/{} passed",
        cases.len() - failed,
        cases.len()
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
