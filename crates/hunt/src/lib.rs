//! Collie-style adversarial anomaly hunting for the PARALEON stack.
//!
//! The paper tunes DCQCN for average-case utility; this crate searches
//! for the *worst* cases — the PFC pause storms, goodput collapses,
//! starvation patterns and livelocks DCQCN fabrics are famous for —
//! by mutating a compact genome ([`genome::HuntPoint`]: topology spec,
//! workload, fault plan, DCQCN parameters, seed) to maximize the signal
//! of a machine-checkable [`oracle`] suite, the way Collie (NSDI'22)
//! hunts performance anomalies in RDMA deployments by guided search
//! instead of hand-written scenarios.
//!
//! The pipeline:
//!
//! 1. [`eval`] runs a candidate point and its fault-free *twin* (same
//!    topology/workload/seed, no faults, default parameters) through the
//!    deterministic simulator and extracts per-interval signals.
//! 2. [`oracle`] scores the pair: goodput collapse vs the twin, sustained
//!    PFC pause-storm ratio, per-flow unfairness/starvation, audit
//!    invariant violations, and an event-budget livelock detector.
//! 3. [`search`] runs a seeded (µ+λ)-style mutation loop, fanning
//!    candidate evaluation across threads with the index-addressed
//!    [`sweep`] runner (results in job order — parallel hunts reproduce
//!    serial ones bit for bit).
//! 4. [`minimize`] delta-debugs every confirmed finding — dropping
//!    flows and fault events, shrinking counts/bytes/topology, resetting
//!    parameters to defaults — while the oracle keeps firing.
//! 5. [`corpus`] serializes minimized repros as JSON; `corpus replay`
//!    re-runs every committed case and demands *byte-identical* oracle
//!    reports, turning each found pathology into a regression gate.
//!
//! Everything is deterministic: same binary, same seed, same findings.

pub mod corpus;
pub mod eval;
pub mod genome;
pub mod minimize;
pub mod mutate;
pub mod oracle;
pub mod search;
pub mod sweep;

pub use corpus::HuntCase;
pub use eval::{evaluate, EvalConfig, Evaluation, RunMetrics};
pub use genome::{FlowSpec, GenomeCaps, HuntPoint};
pub use minimize::{minimize, MinimizeStats};
pub use oracle::{OracleConfig, OracleKind, OracleOutcome, OracleReport};
pub use search::{Finding, HuntResult, SearchConfig};
