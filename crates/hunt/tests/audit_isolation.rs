//! The thread-local audit registry must not leak violations across
//! evaluations: `evaluate` resets it before each run and drains it
//! after, so back-to-back evaluations of the same point are
//! byte-identical even when something polluted the registry in between.

use paraleon_dcqcn::DcqcnParams;
use paraleon_hunt::eval::{evaluate, EvalConfig};
use paraleon_hunt::genome::{FlowSpec, HuntPoint};
use paraleon_hunt::oracle::OracleConfig;
use paraleon_netsim::{ClosSpec, FaultPlan, TopoSpec, MILLI};

fn stormy_point() -> HuntPoint {
    let mut faults = FaultPlan::new(9);
    faults.pfc_storm(0, MILLI, 3 * MILLI);
    HuntPoint {
        topo: TopoSpec::TwoTier(ClosSpec {
            n_tor: 2,
            hosts_per_tor: 2,
            n_leaf: 1,
            host_gbps: 100.0,
            uplink_gbps: 100.0,
            delay_ns: 2_000,
        }),
        workload: vec![FlowSpec {
            src: 2,
            dst: 0,
            bytes: 500_000,
            start: 0,
            count: 4,
            gap: MILLI,
        }],
        collective: None,
        faults,
        params: DcqcnParams::nvidia_default(),
        seed: 9,
    }
}

#[test]
fn evaluations_do_not_leak_audit_state() {
    let cfg = EvalConfig {
        intervals: 6,
        lambda_mi: MILLI,
        event_budget: 50_000_000,
        tail: 3,
    };
    let oracles = OracleConfig::default();
    let a = evaluate(&cfg, &oracles, &stormy_point()).expect("evaluates");

    // Plant a synthetic violation between evaluations. evaluate() must
    // reset it away, not attribute it to the next run's report.
    paraleon_audit::set_panic_on_violation(false);
    paraleon_audit::report(paraleon_audit::AuditViolation::PoolAccounting {
        tracked_in_flight: 1,
        pool_in_flight: 0,
    });

    let b = evaluate(&cfg, &oracles, &stormy_point()).expect("evaluates");
    assert_eq!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap(),
        "a planted violation leaked into the second evaluation"
    );

    // evaluate() leaves the registry drained: nothing carries forward.
    let (count, reports) = paraleon_audit::drain();
    assert_eq!(count, 0, "registry not drained after evaluate()");
    assert!(reports.is_empty());
}

#[test]
fn drain_is_destructive() {
    paraleon_audit::set_panic_on_violation(false);
    paraleon_audit::reset();
    paraleon_audit::report(paraleon_audit::AuditViolation::PoolAccounting {
        tracked_in_flight: 2,
        pool_in_flight: 1,
    });
    let (first, _) = paraleon_audit::drain();
    let (second, reports) = paraleon_audit::drain();
    if paraleon_audit::compiled_in() {
        assert_eq!(first, 1);
    }
    assert_eq!(second, 0, "drain must empty the registry");
    assert!(reports.is_empty());
}
