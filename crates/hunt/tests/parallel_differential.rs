//! Differential gate for the conservative parallel engine: over genomes
//! the search can actually reach — including active fault plans and
//! mid-run control-plane crashes — a sharded run at 2 and 4 threads
//! must be **byte-identical** to the serial reference. "Identical" is
//! checked at three layers:
//!
//! * interval metrics and flow completions (exact, down to every f64
//!   bit — [`IntervalMetrics`]'s `PartialEq` is bitwise);
//! * the telemetry flight-recorder tail (the parallel engine captures
//!   emissions on shard threads and replays them in serial order; any
//!   reordering or loss shows up here);
//! * audit violation counts (zero or not, shard workers fold their
//!   thread-local registries back into the coordinator's).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use paraleon::{ClosedLoop, CtrlPlaneConfig, IntervalRecord, LoopConfig, MonitorKind, SchemeKind};
use paraleon_hunt::genome::{GenomeCaps, HuntPoint};
use paraleon_hunt::mutate::{mutate, seed_point};
use paraleon_hunt::oracle::ALL_ORACLES;
use paraleon_netsim::{Engine, FlowRecord, IntervalMetrics, SimConfig, MILLI};
use paraleon_telemetry as tel;

/// Intervals per differential run — enough for fault plans and SA
/// dispatches to engage while keeping each proptest case subsecond.
const INTERVALS: u64 = 5;
/// Flight-recorder events compared (newest `N`; the ring itself is
/// bounded, so the tail is the part both runs are guaranteed to retain).
const FLIGHT_TAIL: usize = 256;

/// Deterministically generate a point the way the search would: seed it,
/// then walk `steps` mutations cycling through the oracle palettes.
fn generated_point(seed: u64, steps: usize, kind_idx: usize) -> HuntPoint {
    let caps = GenomeCaps::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = seed_point(&caps, &mut rng);
    for i in 0..steps {
        let kind = ALL_ORACLES[(kind_idx + i) % ALL_ORACLES.len()];
        p = mutate(&p, kind, &caps, &mut rng);
    }
    p
}

/// Everything one engine run leaves behind that the parallel engine
/// promises to reproduce exactly.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    metrics: Vec<IntervalMetrics>,
    completions: Vec<FlowRecord>,
    events_processed: u64,
    flight_tail: Vec<tel::TimedEvent>,
    audit_violations: u64,
}

/// Run `point` on the engine with `threads` shard workers and collect
/// the comparison fingerprint. Telemetry and the audit registry are
/// thread-local; resetting them here keeps back-to-back runs isolated.
fn run_sim(point: &HuntPoint, threads: usize) -> Fingerprint {
    tel::set_enabled(true);
    tel::reset();
    paraleon_audit::reset();
    let cfg = SimConfig {
        dcqcn: point.params,
        track_ground_truth: true,
        seed: point.seed,
        ..SimConfig::default()
    };
    let mut sim = Engine::new(point.topo.build(), cfg, threads);
    for (src, dst, bytes, start) in point.expand_flows() {
        sim.try_add_flow(src, dst, bytes, start)
            .expect("reachable genomes only emit valid flows");
    }
    sim.install_fault_plan(&point.faults)
        .expect("reachable genomes only emit valid fault plans");
    let mut metrics = Vec::new();
    for i in 0..INTERVALS {
        sim.run_until((i + 1) * MILLI);
        metrics.push(sim.collect_interval());
    }
    let flight = tel::flight_events();
    let tail_start = flight.len().saturating_sub(FLIGHT_TAIL);
    Fingerprint {
        metrics,
        completions: sim.take_completions(),
        events_processed: sim.events_processed(),
        flight_tail: flight[tail_start..].to_vec(),
        audit_violations: paraleon_audit::violation_count(),
    }
}

/// What a closed-loop run leaves behind: the interval records the tuner
/// saw, plus everything [`Fingerprint`] covers, plus the control-plane
/// accounting and the parameters the fabric ended on.
#[derive(Debug, PartialEq)]
struct LoopFingerprint {
    history: Vec<IntervalRecord>,
    completions: Vec<FlowRecord>,
    events_processed: u64,
    flight_tail: Vec<tel::TimedEvent>,
    audit_violations: u64,
    final_params: String,
    /// `(sent, lost, retries, crashes)` across both channel directions.
    ctrl: (u64, u64, u64, u64),
}

/// Run `point` through the *full closed loop* — monitor, tuner and the
/// hardened control plane — with a cold controller crash mid-run, and
/// fingerprint everything the loop observed.
fn run_loop(point: &HuntPoint, threads: usize) -> LoopFingerprint {
    tel::set_enabled(true);
    tel::reset();
    paraleon_audit::reset();
    let mut cl = ClosedLoop::builder(point.topo.build())
        .scheme(SchemeKind::Paraleon)
        .monitor(MonitorKind::Paraleon)
        .parallel(threads)
        .sim_config(SimConfig {
            dcqcn: point.params,
            seed: point.seed,
            ..SimConfig::default()
        })
        .loop_config(LoopConfig {
            lambda_mi: MILLI,
            force_tuning: true,
            ..LoopConfig::default()
        })
        .ctrl_plane(CtrlPlaneConfig::default())
        .seed(point.seed)
        .build();
    for (src, dst, bytes, start) in point.expand_flows() {
        cl.sim
            .try_add_flow(src, dst, bytes, start)
            .expect("reachable genomes only emit valid flows");
    }
    // The genome's own faults plus a cold crash while dispatches are in
    // flight and a warm one near the end — the recovery paths must be as
    // deterministic under sharding as steady state.
    let mut faults = point.faults.clone();
    faults.ctrl_crash(2 * MILLI + 513, false);
    faults.ctrl_crash(4 * MILLI + 257, true);
    cl.install_fault_plan(&faults)
        .expect("reachable genomes only emit valid fault plans");
    for _ in 0..INTERVALS {
        cl.step();
    }
    let flight = tel::flight_events();
    let tail_start = flight.len().saturating_sub(FLIGHT_TAIL);
    let stats = cl.ctrl().expect("ctrl plane is armed").stats();
    LoopFingerprint {
        history: cl.cell.history.clone(),
        completions: cl.completions.clone(),
        events_processed: cl.sim.events_processed(),
        flight_tail: flight[tail_start..].to_vec(),
        audit_violations: paraleon_audit::violation_count(),
        final_params: format!("{:?}", cl.sim.dcqcn_params()),
        ctrl: (
            stats.up.sent + stats.down.sent,
            stats.up.lost + stats.down.lost,
            stats.retries,
            stats.crashes,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Raw engine differential: serial vs 2- and 4-way sharded runs of
    /// the same reachable genome, fault plan installed and firing.
    #[test]
    fn parallel_engine_is_byte_identical_to_serial(
        seed in 0u64..1 << 32,
        steps in 0usize..8,
        kind_idx in 0usize..5,
    ) {
        let p = generated_point(seed, steps, kind_idx);
        let serial = run_sim(&p, 1);
        for threads in [2usize, 4] {
            let par = run_sim(&p, threads);
            prop_assert_eq!(
                &par, &serial,
                "{} threads diverged from serial on seed {} steps {} kind {}",
                threads, seed, steps, kind_idx
            );
        }
    }
}

/// Collective-workload differential: a barrier-synchronized ring
/// allreduce driven through the closed loop over a *rail-optimized*
/// fabric (striped host incidence — the layout most sensitive to shard
/// partitioning) must be byte-identical serial vs 2- and 4-way sharded.
/// Wave admission depends on the completion-record stream, so any
/// engine-level reordering would cascade into different wave timings —
/// this gate catches it at the first diverged record.
#[test]
fn collective_over_rail_topology_is_byte_identical() {
    use paraleon::drivers::run_collective;
    use paraleon_netsim::RailSpec;
    use paraleon_workloads::{Collective, RingAllreduce, RingConfig};
    let spec = RailSpec {
        n_rail: 4,
        n_server: 2,
        n_spine: 2,
        host_gbps: 100.0,
        uplink_gbps: 100.0,
        delay_ns: 1_000,
    };
    let run = |threads: usize| {
        tel::set_enabled(true);
        tel::reset();
        paraleon_audit::reset();
        let mut cl = ClosedLoop::builder(spec.build())
            .scheme(SchemeKind::Paraleon)
            .monitor(MonitorKind::Paraleon)
            .parallel(threads)
            .loop_config(LoopConfig {
                lambda_mi: MILLI,
                force_tuning: true,
                ..LoopConfig::default()
            })
            .seed(7)
            .build();
        let mut ring = RingAllreduce::new(RingConfig {
            workers: (0..8).collect(),
            message_bytes: 250_000,
            off_time: MILLI,
            rounds: Some(2),
        });
        let recs = run_collective(&mut cl, &mut ring, 0, 100 * MILLI);
        assert!(ring.finished(), "2 rounds must finish within 100 ms");
        let flight = tel::flight_events();
        let tail_start = flight.len().saturating_sub(FLIGHT_TAIL);
        (
            recs,
            cl.cell.history.clone(),
            cl.sim.events_processed(),
            flight[tail_start..].to_vec(),
            paraleon_audit::violation_count(),
        )
    };
    let serial = run(1);
    for threads in [2usize, 4] {
        let par = run(threads);
        assert_eq!(
            par, serial,
            "{threads} threads diverged from serial on the collective workload"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Closed-loop differential: the whole PARALEON loop — monitor,
    /// tuner, hardened control plane with mid-run controller crashes —
    /// on the sharded engine reproduces the serial run exactly, down to
    /// the channel's send/loss/retry/crash accounting.
    #[test]
    fn closed_loop_on_parallel_engine_matches_serial(
        seed in 0u64..1 << 32,
        kind_idx in 0usize..5,
    ) {
        let p = generated_point(seed, 4, kind_idx);
        let serial = run_loop(&p, 1);
        for threads in [2usize, 4] {
            let par = run_loop(&p, threads);
            prop_assert_eq!(
                &par, &serial,
                "{} threads diverged from serial on seed {} kind {}",
                threads, seed, kind_idx
            );
        }
    }
}
