//! Cross-module properties of the hunter: JSON round-trips over every
//! genome the search can reach, and minimizer idempotence under
//! synthetic oracles.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use paraleon_hunt::genome::{GenomeCaps, HuntPoint};
use paraleon_hunt::minimize::minimize_with;
use paraleon_hunt::mutate::{mutate, seed_point};
use paraleon_hunt::oracle::ALL_ORACLES;

/// Deterministically generate a point the way the search would: seed it,
/// then walk `steps` mutations cycling through the oracle palettes.
fn generated_point(seed: u64, steps: usize, kind_idx: usize) -> HuntPoint {
    let caps = GenomeCaps::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = seed_point(&caps, &mut rng);
    for i in 0..steps {
        let kind = ALL_ORACLES[(kind_idx + i) % ALL_ORACLES.len()];
        p = mutate(&p, kind, &caps, &mut rng);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any reachable genome survives both the `Value` round-trip and a
    /// full text round-trip byte-identically — the property the corpus
    /// replay gate stands on.
    #[test]
    fn hunt_point_json_round_trips(
        seed in 0u64..1 << 32,
        steps in 0usize..10,
        kind_idx in 0usize..5,
    ) {
        let p = generated_point(seed, steps, kind_idx);
        let back = HuntPoint::from_value(&p.serialize_value()).expect("from_value");
        prop_assert_eq!(&back, &p);

        let text = serde_json::to_string(&p).expect("to_string");
        let v = serde_json::from_str_value(&text).expect("parse");
        let reparsed = HuntPoint::from_value(&v).expect("from_value after parse");
        let text2 = serde_json::to_string(&reparsed).expect("to_string again");
        prop_assert_eq!(text2, text, "text round-trip must be byte-identical");
    }

    /// A converged minimization is a fixpoint: running the minimizer a
    /// second time accepts nothing and returns the point unchanged.
    #[test]
    fn minimizer_is_idempotent_on_synthetic_oracles(
        seed in 0u64..1 << 32,
        min_reps in 1u32..8,
        need_fault in 0u8..2,
    ) {
        let p = generated_point(seed, 6, 0);
        let fires = |q: &HuntPoint| {
            let reps: u32 = q.workload.iter().map(|f| f.count).sum();
            reps >= min_reps && (need_fault == 0 || !q.faults.is_empty())
        };
        let (once, s1) = minimize_with(&p, 20_000, fires);
        if fires(&p) {
            prop_assert!(fires(&once), "minimizer must preserve the predicate");
            prop_assert!(s1.converged, "20k trials is ample for this genome");
            let (twice, s2) = minimize_with(&once, 20_000, fires);
            prop_assert!(s2.converged);
            prop_assert_eq!(s2.accepted, 0, "second run must accept nothing");
            prop_assert_eq!(twice, once);
        } else {
            prop_assert_eq!(&once, &p, "non-firing input returns unchanged");
            prop_assert_eq!(s1.trials, 0);
        }
    }
}
