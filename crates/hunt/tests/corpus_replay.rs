//! Regression gate over the committed corpus: every minimized pathology
//! the hunter ever found must still reproduce, and its oracle report
//! must re-serialize byte-identically to the committed file.

use std::collections::BTreeSet;

use paraleon_hunt::corpus::{corpus_dir, load_dir, replay};

#[test]
fn committed_corpus_cases_still_fire() {
    let dir = corpus_dir();
    let cases = load_dir(&dir).expect("corpus loads");
    assert!(
        cases.len() >= 2,
        "expected at least 2 committed corpus cases in {}, found {}",
        dir.display(),
        cases.len()
    );
    let mut kinds = BTreeSet::new();
    for case in &cases {
        let r = replay(case).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        assert!(
            r.fired,
            "{}: the {} oracle no longer fires",
            case.name,
            case.kind.name()
        );
        assert!(
            r.identical,
            "{}: oracle report drifted\nwant: {}\ngot:  {}",
            case.name, r.want, r.got
        );
        kinds.insert(case.kind.name());
    }
    assert!(
        kinds.len() >= 2,
        "corpus must cover at least 2 distinct pathology classes, got {kinds:?}"
    );
}
