//! Quickstart: run PARALEON's closed tuning loop on a small RoCEv2
//! fabric and watch it react to a workload shift.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds a 2-ToR CLOS, runs an elephant-dominated phase,
//! then floods the fabric with mice. PARALEON's monitor detects the
//! flow-size-distribution shift via KL divergence, triggers a simulated-
//! annealing episode, and retunes the DCQCN parameters live. The printed
//! per-interval log shows the trigger firing and the parameters moving.

use paraleon::prelude::*;

fn main() {
    // 2 ToRs × 4 hosts each, 2 leaves, 100 Gbps links, 1 µs propagation.
    let topo = Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 1_000);
    let mut cl = ClosedLoop::builder(topo)
        .scheme(SchemeKind::Paraleon)
        .monitor(MonitorKind::Paraleon)
        .seed(7)
        .build();

    println!("phase 1: elephant flows (8 MB each, cross-ToR)");
    for i in 0..4usize {
        cl.sim.add_flow(i, 4 + i, 8 << 20, 0);
    }
    for _ in 0..10 {
        step_and_log(&mut cl);
    }

    println!("\nphase 2: mice influx (hundreds of 4 KB RPCs)");
    for burst in 0..8u64 {
        let now = cl.sim.now();
        for k in 0..50usize {
            let src = k % 8;
            let dst = (k + 3) % 8;
            cl.sim
                .add_flow(src, dst, 4_096, now + burst * 1_000 + k as u64 * 500);
        }
        step_and_log(&mut cl);
    }

    println!("\nphase 3: drain");
    for _ in 0..10 {
        step_and_log(&mut cl);
    }

    let triggers = cl.cell.history.iter().filter(|r| r.triggered).count();
    let dispatches = cl.cell.history.iter().filter(|r| r.dispatched).count();
    println!(
        "\nsummary: {} intervals, {} KL triggers, {} parameter dispatches, {} flows completed",
        cl.cell.history.len(),
        triggers,
        dispatches,
        cl.completions.len()
    );
    println!(
        "final deployed parameters: ai_rate={} Mbps, rate_reduce_monitor_period={} us, Kmin={} KB, Kmax={} KB",
        cl.cell.last_params.ai_rate,
        cl.cell.last_params.rate_reduce_monitor_period,
        cl.cell.last_params.k_min,
        cl.cell.last_params.k_max
    );
}

fn step_and_log(cl: &mut ClosedLoop) {
    let r = cl.step().clone();
    println!(
        "t={:>5.1}ms goodput={:>6.1}Gbps rtt={:>7.1}us U={:.3} mu={:.2} {:?}{}{}",
        r.t as f64 / 1e6,
        r.goodput * 8.0 / 1e9,
        r.avg_rtt_ns / 1e3,
        r.utility,
        r.mu,
        r.dominant,
        if r.triggered { "  [KL TRIGGER]" } else { "" },
        if r.dispatched { "  [dispatch]" } else { "" },
    );
}
