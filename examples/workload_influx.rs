//! Workload-influx scenario (the paper's §IV-B2): an LLM alltoall runs
//! as background traffic and an FB_Hadoop burst "influxes" mid-run.
//!
//! ```sh
//! cargo run --release --example workload_influx
//! ```
//!
//! Watch the µ column: during the influx the dominant flow type flips
//! from elephants to mice, the KL trigger fires, and PARALEON retunes
//! toward delay-friendly parameters; when the mice finish, elephants
//! re-dominate and it retunes back toward throughput.

use paraleon::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let topo = Topology::two_tier_clos(4, 8, 2, 100.0, 100.0, 5_000);
    let mut cl = ClosedLoop::builder(topo)
        .scheme(SchemeKind::Paraleon)
        .seed(11)
        .build();

    // Background collective: 8 workers, continuous rounds.
    let mut a2a = AllToAll::new(AllToAllConfig {
        workers: (0..8).map(|i| i * 4).collect(),
        message_bytes: 1 << 20,
        off_time: MILLI,
        rounds: None,
    });

    // Influx: 15 ms of FB_Hadoop at 50% load, arriving at t = 20 ms.
    let wl = PoissonWorkload::new(
        PoissonConfig {
            hosts: 32,
            host_bw_bytes_per_sec: 12.5e9,
            load: 0.5,
            start: 20 * MILLI,
            end: 35 * MILLI,
        },
        FlowSizeDist::fb_hadoop(),
    );
    let mut rng = StdRng::seed_from_u64(3);
    let influx = wl.generate(&mut rng);
    println!(
        "background: 8-worker alltoall; influx: {} FB_Hadoop flows in 20-35 ms\n",
        influx.len()
    );

    let mut idx = 0;
    let mut next_round = Some(0u64);
    let mut seen = 0usize;
    let mut collective = std::collections::HashSet::new();
    while cl.sim.now() < 60 * MILLI {
        if let Some(t) = next_round {
            if cl.sim.now() >= t {
                let wave = a2a
                    .start_round(cl.sim.now())
                    .expect("rounds start only while the collective is idle");
                for f in wave {
                    let qp = drivers::qp_id(f.src, f.dst);
                    collective.insert(cl.sim.add_flow_on_qp(
                        f.src,
                        f.dst,
                        f.bytes,
                        cl.sim.now(),
                        qp,
                    ));
                }
                next_round = None;
            }
        }
        let horizon = cl.sim.now() + 2 * MILLI;
        while idx < influx.len() && influx[idx].start <= horizon {
            let f = influx[idx];
            if f.start >= cl.sim.now() {
                cl.sim.add_flow(f.src, f.dst, f.bytes, f.start);
            }
            idx += 1;
        }
        let r = cl.step().clone();
        for done in cl.completions[seen..].iter().copied() {
            if collective.remove(&done.flow) {
                if let Some(t) = a2a
                    .on_flow_done(done.finish)
                    .expect("only admitted completions are fed back")
                {
                    next_round = Some(t);
                }
            }
        }
        seen = cl.completions.len();
        if (r.t / MILLI).is_multiple_of(2) {
            println!(
                "t={:>4}ms  TP={:>6.1}Gbps  RTT={:>7.1}us  mu={:.2} {:?}{}",
                r.t / MILLI,
                r.goodput * 8.0 / 1e9,
                r.avg_rtt_ns / 1e3,
                r.mu,
                r.dominant,
                if r.triggered { "  <-- KL trigger" } else { "" }
            );
        }
    }
    let triggers = cl.cell.history.iter().filter(|r| r.triggered).count();
    println!(
        "\n{} KL triggers across the run; {} flows completed; final Kmax = {:.0} KB",
        triggers,
        cl.completions.len(),
        cl.cell.last_params.k_max
    );
}
