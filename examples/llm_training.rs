//! LLM-training scenario: an ON-OFF alltoall collective (the paper's
//! most incast-prone workload) under three tuning schemes.
//!
//! ```sh
//! cargo run --release --example llm_training
//! ```
//!
//! Each "training iteration" is one synchronized alltoall (every worker
//! sends the same message to every other worker) followed by a compute
//! (OFF) phase. The collective finishes when its straggler finishes, so
//! tail FCT directly bounds training throughput — which is why the
//! paper's testbed result (Fig. 13) measures algorithm bandwidth across
//! settings. This example prints per-round algbw for the NVIDIA default,
//! the expert setting, and PARALEON tuning live.

use paraleon::prelude::*;

fn run(scheme: SchemeKind) -> (String, Vec<f64>) {
    let topo = Topology::two_tier_clos(4, 8, 2, 100.0, 100.0, 5_000);
    let name = scheme.name().to_string();
    let mut cl = ClosedLoop::builder(topo)
        .scheme(scheme)
        .loop_config(LoopConfig {
            force_tuning: true, // tune from t=0, like a fresh cluster
            weights: UtilityWeights::throughput_sensitive(),
            ..LoopConfig::default()
        })
        .build();
    // 16 workers spread across all four racks.
    let mut a2a = AllToAll::new(AllToAllConfig {
        workers: (0..16).map(|i| i * 2).collect(),
        message_bytes: 1 << 20, // 1 MB per peer per round
        off_time: 2 * MILLI,    // "compute" phase
        rounds: Some(6),
    });
    drivers::run_alltoall(&mut cl, &mut a2a, 0, 10 * SEC);
    let algbw: Vec<f64> = (0..a2a.round_durations.len())
        .filter_map(|i| a2a.algbw_bytes_per_sec(i))
        .map(|b| b * 8.0 / 1e9)
        .collect();
    (name, algbw)
}

fn main() {
    println!("16-worker alltoall, 1 MB messages, 6 training iterations\n");
    println!("{:<10} per-round algbw (Gbps)", "scheme");
    let mut results = Vec::new();
    for scheme in [
        SchemeKind::Default,
        SchemeKind::Expert,
        SchemeKind::Paraleon,
    ] {
        let (name, algbw) = run(scheme);
        println!(
            "{:<10} {}",
            name,
            algbw
                .iter()
                .map(|b| format!("{b:>6.1}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        results.push((name, algbw));
    }
    println!(
        "\nNote how PARALEON's later rounds improve as its SA episode converges,\n\
         while the static settings stay where they booted."
    );
    let last = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.last().copied())
            .unwrap_or(0.0)
    };
    println!(
        "final-round algbw: default {:.1} Gbps, expert {:.1} Gbps, PARALEON {:.1} Gbps",
        last("Default"),
        last("Expert"),
        last("PARALEON")
    );
}
