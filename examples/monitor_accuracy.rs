//! Monitoring deep-dive: why PARALEON's ternary flow states beat naive
//! per-interval classification at millisecond monitor intervals.
//!
//! ```sh
//! cargo run --release --example monitor_accuracy
//! ```
//!
//! A congested elephant trickles under the τ = 1 MB threshold every
//! interval. Naive Elastic Sketch calls it a mouse forever; PARALEON's
//! sliding window promotes it to Potential Elephant and then Elephant,
//! exactly like the paper's Figure 4 walkthrough. The example replays
//! that trace, then measures both schemes' FSD accuracy on a realistic
//! mixed workload through the full simulator.

use paraleon::prelude::*;
use paraleon_monitor::{FsdMonitor, NaiveSketchMonitor, ParaleonMonitor};
use paraleon_sketch::SlidingWindowClassifier;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn figure4_walkthrough() {
    println!("--- Figure 4 walkthrough (tau = 1 MB, delta = 3) ---");
    let mut c = SlidingWindowClassifier::new(WindowConfig::default());
    let f2_step = (0.15 * (1 << 20) as f64) as u64;
    let f3_step = (1 << 20) / 10;
    for mi in 1..=8u32 {
        let mut batch: Vec<(u64, u64)> = Vec::new();
        if mi == 1 {
            batch.push((1, 2 << 20)); // f1: instant elephant
        }
        if mi <= 7 {
            batch.push((2, f2_step)); // f2: 0.15 MB per interval
            batch.push((3, f3_step)); // f3: 0.10 MB per interval, dies at MI8
        }
        c.end_interval(batch);
        println!(
            "MI{mi}: f1={:?} f2={:?} f3={:?}",
            c.state(1),
            c.state(2),
            c.state(3)
        );
    }
}

fn simulated_accuracy(kind: MonitorKind) -> f64 {
    let topo = Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 1_000);
    let sim_cfg = SimConfig {
        track_ground_truth: true,
        ..SimConfig::default()
    };
    let mut cl = ClosedLoop::builder(topo)
        .scheme(SchemeKind::Expert)
        .monitor(kind)
        .sim_config(sim_cfg)
        .build();
    // Mixed traffic: 4 cross-fabric elephants + steady mice.
    let wl = PoissonWorkload::new(
        PoissonConfig {
            hosts: 8,
            host_bw_bytes_per_sec: 12.5e9,
            load: 0.1,
            start: 0,
            end: 30 * MILLI,
        },
        FlowSizeDist::solar_rpc(),
    );
    let mut rng = StdRng::seed_from_u64(5);
    let mut flows = wl.generate(&mut rng);
    for i in 0..4usize {
        flows.push(FlowRequest {
            src: i,
            dst: 4 + i,
            bytes: 40 << 20,
            start: 0,
        });
    }
    flows.sort_by_key(|f| f.start);
    drivers::run_schedule(&mut cl, &flows, 30 * MILLI);
    let acc: Vec<f64> = cl
        .cell
        .history
        .iter()
        .filter_map(|r| r.fsd_accuracy)
        .collect();
    stats::mean(&acc)
}

fn main() {
    figure4_walkthrough();

    println!("\n--- direct monitor comparison on one switch feed ---");
    let mut naive = NaiveSketchMonitor::new(1 << 20);
    let mut para = ParaleonMonitor::new(WindowConfig::default());
    // An elephant throttled to 0.3 MB per interval.
    for mi in 0..6 {
        let readings = vec![(0usize, vec![(42u64, 300 * 1024u64)])];
        let n = naive.on_interval(&readings, mi).unwrap();
        let p = para.on_interval(&readings, mi).unwrap();
        println!(
            "MI{}: naive elephant share = {:.2}, PARALEON elephant share = {:.2}",
            mi + 1,
            n.elephant_share(),
            p.elephant_share()
        );
    }

    println!("\n--- end-to-end FSD accuracy through the simulator ---");
    for kind in [MonitorKind::NaiveSketch, MonitorKind::Paraleon] {
        let name = kind.name();
        let acc = simulated_accuracy(kind);
        println!("{name:<14} mean FSD accuracy = {acc:.3}");
    }
}
