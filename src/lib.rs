//! Umbrella package for the PARALEON reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the library surface
//! lives in the [`paraleon`] crate and its substrate crates.

pub use paraleon;
